// Lightweight metrics used by every subsystem and printed by the benches.
//
// Counter: monotonically increasing event count.
// Summary: streaming mean/variance (Welford) + min/max + retained samples
//          for exact percentiles (experiments here are small enough that
//          retaining samples is cheaper than quantile sketches).
// Histogram: fixed log-spaced buckets for latency-like quantities.
// MetricRegistry: named metrics, so a component can expose its counters
//          without the caller knowing its internals.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace integrade {

class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  [[nodiscard]] std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

class Summary {
 public:
  void observe(double x);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Exact percentile over retained samples, q in [0, 1]. Returns 0 if empty.
  [[nodiscard]] double percentile(double q) const;

  void reset();

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

class Histogram {
 public:
  /// Log-spaced buckets covering [lo, hi] with `buckets` divisions.
  Histogram(double lo, double hi, int buckets);

  void observe(double x);
  [[nodiscard]] std::int64_t count() const { return total_; }
  [[nodiscard]] const std::vector<std::int64_t>& bucket_counts() const { return counts_; }
  [[nodiscard]] double bucket_lower_bound(int i) const;

  [[nodiscard]] std::string to_string() const;

 private:
  double log_lo_;
  double log_hi_;
  std::vector<std::int64_t> counts_;  // [under, b0..bn-1, over]
  std::int64_t total_ = 0;
};

class MetricRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Summary& summary(const std::string& name) { return summaries_[name]; }

  [[nodiscard]] std::int64_t counter_value(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Summary>& summaries() const { return summaries_; }

  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace integrade
