// Lightweight metrics used by every subsystem and printed by the benches.
//
// Counter: monotonically increasing event count.
// Summary: streaming mean/variance (Welford) + min/max + a bounded sample
//          reservoir for percentiles: exact below the cap, deterministic
//          (fixed-seed) reservoir sampling above it, so week-long chaos runs
//          stay within a fixed byte budget.
// Histogram: fixed log-spaced buckets for latency-like quantities.
// MetricRegistry: named metrics, so a component can expose its counters
//          without the caller knowing its internals.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace integrade {

class Counter {
 public:
  void add(std::int64_t n = 1) { value_ += n; }
  [[nodiscard]] std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

class Summary {
 public:
  void observe(double x);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Percentile over retained samples, q in [0, 1]. Exact while count() is
  /// below the reservoir cap; an unbiased estimate beyond it. Returns 0 if
  /// empty.
  [[nodiscard]] double percentile(double q) const;

  /// Bytes held for percentile estimation — bounded by the reservoir cap
  /// regardless of how many samples were observed.
  [[nodiscard]] std::size_t retained_bytes() const {
    return samples_.capacity() * sizeof(double);
  }
  [[nodiscard]] std::size_t retained_count() const { return samples_.size(); }

  void reset();

 private:
  /// Reservoir cap: 4096 doubles = 32 KiB per summary, enough for percentile
  /// estimates within a fraction of a percent on smooth distributions.
  static constexpr std::size_t kReservoirCap = 4096;
  /// Fixed seed so identical observation streams always retain identical
  /// reservoirs (metrics must never perturb reproducibility).
  static constexpr std::uint64_t kReservoirSeed = 0x9e3779b97f4a7c15ULL;

  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t rng_state_ = kReservoirSeed;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

class Histogram {
 public:
  /// Log-spaced buckets covering [lo, hi] with `buckets` divisions.
  Histogram(double lo, double hi, int buckets);

  void observe(double x);
  [[nodiscard]] std::int64_t count() const { return total_; }
  [[nodiscard]] const std::vector<std::int64_t>& bucket_counts() const { return counts_; }
  [[nodiscard]] double bucket_lower_bound(int i) const;

  [[nodiscard]] std::string to_string() const;

 private:
  double log_lo_;
  double log_hi_;
  double inv_width_;            // inner / (log_hi_ - log_lo_)
  std::vector<double> bounds_;  // exact bucket lower bounds, bounds_[inner] = hi
  std::vector<std::int64_t> counts_;  // [under, b0..bn-1, over]
  std::int64_t total_ = 0;
};

class MetricRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Summary& summary(const std::string& name) { return summaries_[name]; }

  [[nodiscard]] std::int64_t counter_value(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Summary>& summaries() const { return summaries_; }

  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace integrade
