#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace integrade {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork() { return Rng(next_u64()); }

Rng Rng::stream(std::uint64_t stream_id) const {
  // Chain the four state words with the id through splitmix64 so distinct
  // ids give uncorrelated seeds. const: the parent state is only read.
  std::uint64_t sm = stream_id ^ 0xa0761d6478bd642fULL;
  std::uint64_t seed = splitmix64(sm);
  for (const std::uint64_t word : s_) {
    sm ^= word;
    seed ^= splitmix64(sm);
  }
  return Rng(seed);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::pareto(double alpha, double xm) {
  assert(alpha > 0.0 && xm > 0.0);
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: all mass consumed by rounding
}

}  // namespace integrade
