// Ambient simulation-shard context.
//
// The sharded discrete-event kernel (sim::Engine) partitions the event queue
// into shards; while a shard's events execute, every component that schedules
// follow-up work or emits telemetry must attribute it to that shard — without
// threading a shard id through every API in the middleware. The kernel
// publishes the executing shard here, in a thread-local slot, and consumers
// (the engine's own schedule_* entry points, the tracer's per-shard span
// buffers) read it back.
//
// This lives in common/ rather than sim/ so the observability layer can read
// the ambient shard without depending on the simulation kernel.
#pragma once

#include <cstdint>

namespace integrade {

struct ShardContext {
  /// Engine whose shard is executing (type-erased: common/ cannot name
  /// sim::Engine). Null when no shard context is active.
  const void* engine = nullptr;
  std::uint32_t shard = 0;
  bool active = false;
};

/// The calling thread's ambient shard slot. Written by sim::Engine around
/// event execution (and by Engine::ShardScope); read by anything that needs
/// shard attribution. Outside any shard context, `active` is false and
/// `shard` is 0 — the single-shard behaviour.
inline ShardContext& ambient_shard_context() {
  thread_local ShardContext context;
  return context;
}

}  // namespace integrade
