// Deterministic random number generation.
//
// Every stochastic component (owner workloads, network jitter, schedulers
// breaking ties) draws from an Rng seeded from the experiment seed, so every
// run is exactly reproducible. The core generator is splitmix64 feeding a
// xoshiro256**-style state, which is small, fast, and well distributed —
// more than enough for workload synthesis.
#pragma once

#include <cstdint>
#include <vector>

namespace integrade {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1e7e6e5d4c3b2a19ULL);

  /// Derive an independent child stream; used to give each node / component
  /// its own stream so adding a component never perturbs the others.
  [[nodiscard]] Rng fork();

  /// Derive an independent *named* child stream without consuming any state:
  /// the child depends only on the parent's current state and `stream_id`.
  /// Unlike fork(), sibling streams can be derived in any order, and drawing
  /// from one stream never perturbs another — the property the sharded
  /// simulation kernel needs so per-shard draws cannot reorder across
  /// thread counts.
  [[nodiscard]] Rng stream(std::uint64_t stream_id) const;

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal with the given mean and standard deviation (Box-Muller).
  double normal(double mean, double stddev);

  /// Pareto (heavy-tailed) with shape alpha > 0 and minimum xm > 0.
  double pareto(double alpha, double xm);

  /// Index in [0, weights.size()) drawn proportionally to weights.
  /// Requires a nonempty vector with nonnegative entries, not all zero.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Full generator state, exposed so control-plane snapshots can persist a
  /// component's stream mid-run and restore it bit-exactly: after
  /// set_state(state()), every subsequent draw matches the original stream
  /// (including a buffered Box-Muller spare).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool have_spare_normal = false;
    double spare_normal = 0.0;
  };
  [[nodiscard]] State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, have_spare_normal_, spare_normal_};
  }
  void set_state(const State& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
    have_spare_normal_ = state.have_spare_normal;
    spare_normal_ = state.spare_normal;
  }

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace integrade
