// Minimal leveled logger.
//
// Components log through here so examples can run verbose while tests and
// benches stay silent. The sink is a plain function to keep the dependency
// surface tiny (no iostream in headers that don't need it).
#pragma once

#include <functional>
#include <string>

namespace integrade {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_internal {
void emit(LogLevel level, const std::string& component, const std::string& message);
}

/// Global threshold; messages below it are dropped. Defaults to kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replace the sink (default writes to stderr). Pass nullptr to restore.
void set_log_sink(std::function<void(LogLevel, const std::string&)> sink);

inline void log_debug(const std::string& component, const std::string& message) {
  log_internal::emit(LogLevel::kDebug, component, message);
}
inline void log_info(const std::string& component, const std::string& message) {
  log_internal::emit(LogLevel::kInfo, component, message);
}
inline void log_warn(const std::string& component, const std::string& message) {
  log_internal::emit(LogLevel::kWarn, component, message);
}
inline void log_error(const std::string& component, const std::string& message) {
  log_internal::emit(LogLevel::kError, component, message);
}

}  // namespace integrade
