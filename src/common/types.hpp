// Fundamental value types shared by every InteGrade module.
//
// All quantities that cross module boundaries use these aliases so that a
// reader can tell a byte count from a MIPS rating from a simulated duration
// at a glance, and so that unit mistakes show up in code review.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace integrade {

// ---------------------------------------------------------------------------
// Simulated time.
//
// The discrete-event kernel measures time in integer microseconds since the
// start of the simulation. Integer time keeps the event queue total-ordered
// and the whole system bit-reproducible across platforms.
// ---------------------------------------------------------------------------
using SimTime = std::int64_t;      // absolute, microseconds
using SimDuration = std::int64_t;  // relative, microseconds

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;
inline constexpr SimDuration kWeek = 7 * kDay;

inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

/// Seconds as a double, for reporting only (never for event ordering).
inline double to_seconds(SimDuration d) { return static_cast<double>(d) / kSecond; }
inline SimDuration from_seconds(double s) { return static_cast<SimDuration>(s * kSecond); }

// ---------------------------------------------------------------------------
// Resource quantities.
// ---------------------------------------------------------------------------
using Mips = double;       // CPU speed: millions of instructions per second
using MInstr = double;     // work: millions of instructions
using Bytes = std::int64_t;
using BytesPerSec = double;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

// ---------------------------------------------------------------------------
// Strongly typed identifiers.
//
// Every entity class gets its own id type; mixing a NodeId with a TaskId is a
// compile error. Ids are dense small integers handed out by their registries.
// ---------------------------------------------------------------------------
template <class Tag>
struct Id {
  std::uint64_t value = kInvalid;

  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  auto operator<=>(const Id&) const = default;
};

struct NodeTag {};
struct ClusterTag {};
struct TaskTag {};
struct AppTag {};
struct ObjectTag {};
struct RequestTag {};
struct ReservationTag {};

using NodeId = Id<NodeTag>;
using ClusterId = Id<ClusterTag>;
using TaskId = Id<TaskTag>;
using AppId = Id<AppTag>;
using ObjectId = Id<ObjectTag>;    // ORB-level object key
using RequestId = Id<RequestTag>;  // ORB-level request correlation id
using ReservationId = Id<ReservationTag>;

template <class Tag>
std::string to_string(Id<Tag> id) {
  return id.valid() ? std::to_string(id.value) : std::string("<invalid>");
}

}  // namespace integrade

// Hash support so ids can key unordered containers.
template <class Tag>
struct std::hash<integrade::Id<Tag>> {
  std::size_t operator()(const integrade::Id<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
