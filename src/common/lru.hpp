// Small intrusive-free LRU cache.
//
// Used by the Trader to memoize compiled constraint/preference expressions:
// the GRM re-issues the same handful of query strings every scheduling round,
// so an LRU keyed by source string turns a parse per call into a hash lookup.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace integrade {

/// Fixed-capacity LRU map. `get` refreshes recency; inserting at capacity
/// evicts the least recently used entry. Pointers returned by `get`/`put`
/// stay valid until the entry is evicted or the cache is cleared — callers
/// that may trigger another insertion before use should copy the value out.
template <class Key, class Value, class Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Value for `key`, refreshing its recency; nullptr on miss.
  Value* get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
  }

  /// Insert (or overwrite) `key`; evicts the LRU entry at capacity.
  Value* put(const Key& key, Value value) {
    if (auto it = index_.find(key); it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return &it->second->second;
    }
    if (capacity_ > 0 && entries_.size() >= capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
    entries_.emplace_front(key, std::move(value));
    index_.emplace(key, entries_.begin());
    return &entries_.front().second;
  }

  /// Membership test that does NOT refresh recency (unlike get()).
  [[nodiscard]] bool contains(const Key& key) const {
    return index_.contains(key);
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Recency-ordered view (front = most recent). Snapshot serializers walk
  /// it back-to-front so that re-inserting with put() in iteration order
  /// reconstructs the exact same recency order.
  [[nodiscard]] const std::list<std::pair<Key, Value>>& entries() const {
    return entries_;
  }

  void clear() {
    entries_.clear();
    index_.clear();
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> entries_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      index_;
};

}  // namespace integrade
