// NCC — Node Control Center (paper §4).
//
// "The Node Control Center allows the owners of resource providing machines
// to set the conditions for resource sharing": blackout periods, the
// portion of CPU/RAM grid applications may use, and what counts as an idle
// machine. The defaults below are the paper's promised "sensible default
// values ... to protect providers from degradation in the quality of
// service": share only when the owner has been away past a grace period,
// and never hand out more than the owner leaves free.
//
// The NCC itself is pure policy: the LRM asks it for verdicts; it never
// touches the network.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "node/machine.hpp"
#include "node/usage_profile.hpp"

namespace integrade::ncc {

/// A weekly window (half-open, in week slots) during which sharing is off
/// regardless of idleness — e.g. an owner who wants weekday business hours
/// to themselves no matter what.
struct BlackoutWindow {
  int from_slot = 0;  // [0, kSlotsPerWeek)
  int to_slot = 0;    // exclusive; may wrap past the week end

  [[nodiscard]] bool contains(SimTime t) const;
};

struct SharingPolicy {
  bool sharing_enabled = true;

  /// Hard caps on what grid tasks may consume, as machine fractions.
  double cpu_export_cap = 1.0;
  double ram_export_cap = 0.5;

  /// Idleness definition: owner CPU at or below this threshold...
  double idle_cpu_threshold = 0.15;
  /// ...continuously for this long, with no console session.
  SimDuration idle_grace = 10 * kMinute;

  /// When true (default), the node is shareable only while the owner is
  /// away. When false, leftover CPU is exported even during owner sessions
  /// (the paper's "using resources of a partially idle node", contrasted
  /// with SETI@home's all-or-nothing model) — the E6 QoS bench sweeps this.
  bool require_owner_away = true;

  std::vector<BlackoutWindow> blackouts;

  /// Scheduling economy: a Trader-language constraint over reservation bid
  /// properties (`tenant`, `bid_budget`, `bid_deadline_s`). When non-empty,
  /// the LRM evaluates it against each reservation's bid and refuses the
  /// ones that do not match — the node owner's economic terms, enforced
  /// locally at InteGrade's NCC/LRM split rather than by a central broker.
  /// A bid-less reservation leaves the properties absent, so under the
  /// language's three-valued semantics a non-empty filter refuses it.
  std::string bid_filter;
};

/// Convenience: a policy that shares aggressively (dedicated-node style).
SharingPolicy dedicated_policy();

/// A conservative policy for cautious owners (low caps, long grace).
SharingPolicy conservative_policy();

class Ncc {
 public:
  explicit Ncc(SharingPolicy policy = {}) : policy_(std::move(policy)) {}

  [[nodiscard]] const SharingPolicy& policy() const { return policy_; }
  void set_policy(SharingPolicy policy) { policy_ = std::move(policy); }

  /// Is the node accepting *new* grid work right now? `owner_quiet_since`
  /// is the time the owner last stopped interacting (or nullopt if the
  /// owner is active now).
  [[nodiscard]] bool shareable(const node::Machine& machine, SimTime now,
                               std::optional<SimTime> owner_quiet_since) const;

  /// CPU fraction available for grid work right now under this policy
  /// (0 when not shareable, except partial-share mode).
  [[nodiscard]] double exportable_cpu(const node::Machine& machine, SimTime now,
                                      std::optional<SimTime> owner_quiet_since) const;

  [[nodiscard]] Bytes exportable_ram(const node::Machine& machine) const;

  /// Must currently running grid work be evicted? True when the owner is
  /// back (strict mode) or a blackout window opened. This is deliberately
  /// asymmetric with shareable(): admission waits out the grace period,
  /// but eviction on owner return is immediate — the owner never waits.
  [[nodiscard]] bool must_evict(const node::Machine& machine, SimTime now) const;

 private:
  [[nodiscard]] bool in_blackout(SimTime now) const;

  SharingPolicy policy_;
};

}  // namespace integrade::ncc
