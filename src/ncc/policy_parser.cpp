#include "ncc/policy_parser.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

namespace integrade::ncc {
namespace {

const char* kDayNames[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

Status line_error(int line, const std::string& what) {
  return Status(ErrorCode::kInvalidArgument,
                "line " + std::to_string(line) + ": " + what);
}

/// "30%" -> 0.30
Result<double> parse_percent(const std::string& text) {
  std::string t = trim(text);
  if (t.empty() || t.back() != '%') {
    return Status(ErrorCode::kInvalidArgument, "expected a percentage like 30%");
  }
  t.pop_back();
  try {
    const double value = std::stod(t);
    if (value < 0 || value > 100) {
      return Status(ErrorCode::kInvalidArgument, "percentage out of [0,100]");
    }
    return value / 100.0;
  } catch (const std::exception&) {
    return Status(ErrorCode::kInvalidArgument, "bad percentage '" + text + "'");
  }
}

/// "10min" / "30s" / "2h" -> SimDuration
Result<SimDuration> parse_duration(const std::string& text) {
  const std::string t = trim(lower(text));
  std::size_t pos = 0;
  while (pos < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[pos])) || t[pos] == '.')) {
    ++pos;
  }
  if (pos == 0) {
    return Status(ErrorCode::kInvalidArgument, "bad duration '" + text + "'");
  }
  double value;
  try {
    value = std::stod(t.substr(0, pos));
  } catch (const std::exception&) {
    return Status(ErrorCode::kInvalidArgument, "bad duration '" + text + "'");
  }
  const std::string unit = trim(t.substr(pos));
  if (unit == "s" || unit == "sec") return from_seconds(value);
  if (unit == "min" || unit == "m") return from_seconds(value * 60);
  if (unit == "h" || unit == "hour") return from_seconds(value * 3600);
  return Status(ErrorCode::kInvalidArgument, "unknown duration unit '" + unit + "'");
}

Result<int> parse_day(const std::string& name) {
  for (int d = 0; d < 7; ++d) {
    if (name == kDayNames[d]) return d;
  }
  return Status(ErrorCode::kInvalidArgument, "unknown day '" + name + "'");
}

/// "09:00" -> slot of day [0, 48]; "24:00" allowed as the exclusive end.
Result<int> parse_slot(const std::string& text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) {
    return Status(ErrorCode::kInvalidArgument, "expected HH:MM in '" + text + "'");
  }
  int hours;
  int minutes;
  try {
    hours = std::stoi(text.substr(0, colon));
    minutes = std::stoi(text.substr(colon + 1));
  } catch (const std::exception&) {
    return Status(ErrorCode::kInvalidArgument, "bad time '" + text + "'");
  }
  if (hours < 0 || hours > 24 || minutes < 0 || minutes >= 60 ||
      (hours == 24 && minutes != 0) || minutes % 30 != 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "time must be HH:00 or HH:30 within 00:00..24:00");
  }
  return hours * 2 + minutes / 30;
}

/// "Mon-Fri 09:00-18:00" or "Sun 22:00-24:00".
Result<std::vector<BlackoutWindow>> parse_blackout(const std::string& text) {
  std::istringstream stream(trim(text));
  std::string days;
  std::string hours;
  stream >> days >> hours;
  if (days.empty() || hours.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "expected '<Days> <HH:MM-HH:MM>' in '" + text + "'");
  }

  int day_from;
  int day_to;
  const std::size_t dash = days.find('-');
  if (dash == std::string::npos) {
    auto day = parse_day(days);
    if (!day.is_ok()) return day.status();
    day_from = day_to = day.value();
  } else {
    auto from = parse_day(days.substr(0, dash));
    auto to = parse_day(days.substr(dash + 1));
    if (!from.is_ok()) return from.status();
    if (!to.is_ok()) return to.status();
    day_from = from.value();
    day_to = to.value();
    if (day_to < day_from) {
      return Status(ErrorCode::kInvalidArgument, "day range runs backwards");
    }
  }

  const std::size_t hdash = hours.find('-');
  if (hdash == std::string::npos) {
    return Status(ErrorCode::kInvalidArgument, "expected HH:MM-HH:MM");
  }
  auto from_slot = parse_slot(hours.substr(0, hdash));
  auto to_slot = parse_slot(hours.substr(hdash + 1));
  if (!from_slot.is_ok()) return from_slot.status();
  if (!to_slot.is_ok()) return to_slot.status();
  if (to_slot.value() <= from_slot.value()) {
    return Status(ErrorCode::kInvalidArgument, "time range runs backwards");
  }

  std::vector<BlackoutWindow> windows;
  for (int day = day_from; day <= day_to; ++day) {
    BlackoutWindow window;
    window.from_slot = day * node::kSlotsPerDay + from_slot.value();
    window.to_slot = day * node::kSlotsPerDay + to_slot.value();
    windows.push_back(window);
  }
  return windows;
}

}  // namespace

Result<SharingPolicy> parse_policy(const std::string& text) {
  SharingPolicy policy;
  std::istringstream stream(text);
  std::string raw_line;
  int line_number = 0;

  while (std::getline(stream, raw_line)) {
    ++line_number;
    std::string line = raw_line;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return line_error(line_number, "expected 'key = value'");
    }
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));

    if (key == "sharing") {
      const std::string v = lower(value);
      if (v == "on") {
        policy.sharing_enabled = true;
      } else if (v == "off") {
        policy.sharing_enabled = false;
      } else {
        return line_error(line_number, "sharing must be on|off");
      }
    } else if (key == "mode") {
      const std::string v = lower(value);
      if (v == "strict") {
        policy.require_owner_away = true;
      } else if (v == "partial") {
        policy.require_owner_away = false;
      } else {
        return line_error(line_number, "mode must be strict|partial");
      }
    } else if (key == "cpu_cap") {
      auto fraction = parse_percent(value);
      if (!fraction.is_ok()) return line_error(line_number, fraction.status().message());
      policy.cpu_export_cap = fraction.value();
    } else if (key == "ram_cap") {
      auto fraction = parse_percent(value);
      if (!fraction.is_ok()) return line_error(line_number, fraction.status().message());
      policy.ram_export_cap = fraction.value();
    } else if (key == "idle_threshold") {
      auto fraction = parse_percent(value);
      if (!fraction.is_ok()) return line_error(line_number, fraction.status().message());
      policy.idle_cpu_threshold = fraction.value();
    } else if (key == "grace") {
      auto duration = parse_duration(value);
      if (!duration.is_ok()) return line_error(line_number, duration.status().message());
      policy.idle_grace = duration.value();
    } else if (key == "blackout") {
      auto windows = parse_blackout(value);
      if (!windows.is_ok()) return line_error(line_number, windows.status().message());
      policy.blackouts.insert(policy.blackouts.end(), windows.value().begin(),
                              windows.value().end());
    } else if (key == "bid_filter") {
      // The expression is validated where it is evaluated (the LRM compiles
      // it with services::Constraint::parse and treats a malformed filter
      // as refuse-all); the text is preserved verbatim, case intact.
      if (value.empty()) {
        return line_error(line_number, "bid_filter needs a constraint expression");
      }
      policy.bid_filter = value;
    } else {
      return line_error(line_number, "unknown directive '" + key + "'");
    }
  }
  return policy;
}

std::string format_policy(const SharingPolicy& policy) {
  std::ostringstream out;
  out << "sharing = " << (policy.sharing_enabled ? "on" : "off") << "\n";
  out << "mode = " << (policy.require_owner_away ? "strict" : "partial") << "\n";
  out << "cpu_cap = " << policy.cpu_export_cap * 100 << "%\n";
  out << "ram_cap = " << policy.ram_export_cap * 100 << "%\n";
  out << "idle_threshold = " << policy.idle_cpu_threshold * 100 << "%\n";
  out << "grace = " << to_seconds(policy.idle_grace) << "s\n";
  if (!policy.bid_filter.empty()) {
    out << "bid_filter = " << policy.bid_filter << "\n";
  }
  for (const auto& window : policy.blackouts) {
    const int day = window.from_slot / node::kSlotsPerDay;
    const int from = window.from_slot % node::kSlotsPerDay;
    const int to_day = (window.to_slot - 1) / node::kSlotsPerDay;
    int to = window.to_slot - to_day * node::kSlotsPerDay;
    // Windows produced by parse_policy never wrap; render day by day.
    out << "blackout = " << kDayNames[day];
    if (to_day != day) out << "-" << kDayNames[to_day];
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, " %02d:%02d-%02d:%02d", from / 2,
                  (from % 2) * 30, to / 2, (to % 2) * 30);
    out << buffer << "\n";
  }
  return out.str();
}

}  // namespace integrade::ncc
