// NCC policy configuration language.
//
// Paper §3: "the system must provide a flexible and user-friendly way of
// letting resource providers share their machines as they want", with
// "sensible default values ... to protect providers". The NCC's
// user-facing surface is this small config format — one directive per
// line, '#' comments, everything optional (defaults from SharingPolicy):
//
//     sharing        = on
//     mode           = strict            # or: partial
//     cpu_cap        = 30%
//     ram_cap        = 50%
//     idle_threshold = 15%
//     grace          = 10min             # also: 30s, 2h
//     blackout       = Mon-Fri 09:00-18:00
//     blackout       = Sun 22:00-24:00
//
// `parse_policy` returns the policy or a line-numbered error.
#pragma once

#include <string>

#include "common/result.hpp"
#include "ncc/ncc.hpp"

namespace integrade::ncc {

Result<SharingPolicy> parse_policy(const std::string& text);

/// Render a policy back to config text (round-trips through parse_policy).
std::string format_policy(const SharingPolicy& policy);

}  // namespace integrade::ncc
