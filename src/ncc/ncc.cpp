#include "ncc/ncc.hpp"

#include <algorithm>

namespace integrade::ncc {

bool BlackoutWindow::contains(SimTime t) const {
  const int slot = node::slot_of_week(t);
  if (from_slot <= to_slot) return slot >= from_slot && slot < to_slot;
  // Wrapping window (e.g. Sunday night into Monday morning).
  return slot >= from_slot || slot < to_slot;
}

SharingPolicy dedicated_policy() {
  SharingPolicy policy;
  policy.cpu_export_cap = 1.0;
  policy.ram_export_cap = 0.9;
  policy.idle_grace = 0;
  policy.require_owner_away = false;
  policy.idle_cpu_threshold = 1.0;  // never considered owner-busy
  return policy;
}

SharingPolicy conservative_policy() {
  SharingPolicy policy;
  policy.cpu_export_cap = 0.3;
  policy.ram_export_cap = 0.25;
  policy.idle_grace = 30 * kMinute;
  policy.idle_cpu_threshold = 0.10;
  return policy;
}

bool Ncc::in_blackout(SimTime now) const {
  return std::any_of(policy_.blackouts.begin(), policy_.blackouts.end(),
                     [now](const BlackoutWindow& w) { return w.contains(now); });
}

bool Ncc::shareable(const node::Machine& machine, SimTime now,
                    std::optional<SimTime> owner_quiet_since) const {
  if (!policy_.sharing_enabled || !machine.up()) return false;
  if (in_blackout(now)) return false;
  if (!policy_.require_owner_away) return true;

  if (!owner_quiet_since.has_value()) return false;  // owner active now
  return now - *owner_quiet_since >= policy_.idle_grace;
}

double Ncc::exportable_cpu(const node::Machine& machine, SimTime now,
                           std::optional<SimTime> owner_quiet_since) const {
  if (!policy_.sharing_enabled || !machine.up() || in_blackout(now)) return 0.0;

  const double leftover = machine.free_cpu_fraction();
  if (policy_.require_owner_away) {
    if (!shareable(machine, now, owner_quiet_since)) return 0.0;
    return std::min(policy_.cpu_export_cap, leftover);
  }
  // Partial-share mode: export whatever the owner leaves, capped.
  return std::clamp(std::min(policy_.cpu_export_cap, leftover), 0.0, 1.0);
}

Bytes Ncc::exportable_ram(const node::Machine& machine) const {
  const auto cap = static_cast<Bytes>(
      static_cast<double>(machine.spec().ram) * policy_.ram_export_cap);
  return std::min(cap, machine.free_ram());
}

bool Ncc::must_evict(const node::Machine& machine, SimTime now) const {
  if (!policy_.sharing_enabled || !machine.up()) return true;
  if (in_blackout(now)) return true;
  if (!policy_.require_owner_away) return false;
  const auto& owner = machine.owner_load();
  return owner.present || owner.cpu_fraction > policy_.idle_cpu_threshold;
}

}  // namespace integrade::ncc
