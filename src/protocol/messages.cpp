#include "protocol/messages.hpp"

namespace integrade::protocol {

const char* app_kind_name(AppKind k) {
  switch (k) {
    case AppKind::kSequential: return "sequential";
    case AppKind::kParametric: return "parametric";
    case AppKind::kBsp: return "bsp";
  }
  return "?";
}

const char* app_event_kind_name(AppEventKind k) {
  switch (k) {
    case AppEventKind::kTaskScheduled: return "task_scheduled";
    case AppEventKind::kTaskCompleted: return "task_completed";
    case AppEventKind::kTaskEvicted: return "task_evicted";
    case AppEventKind::kTaskRescheduled: return "task_rescheduled";
    case AppEventKind::kAppCompleted: return "app_completed";
    case AppEventKind::kAppFailed: return "app_failed";
  }
  return "?";
}

const char* task_outcome_name(TaskOutcome o) {
  switch (o) {
    case TaskOutcome::kCompleted: return "completed";
    case TaskOutcome::kEvicted: return "evicted";
    case TaskOutcome::kNodeFailed: return "node_failed";
    case TaskOutcome::kCancelled: return "cancelled";
  }
  return "?";
}

}  // namespace integrade::protocol

namespace integrade::cdr {

using namespace integrade::protocol;

namespace {

void encode_string_seq(Writer& w, const std::vector<std::string>& items) {
  w.write_u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& s : items) w.write_string(s);
}

std::vector<std::string> decode_string_seq(Reader& r) {
  const std::uint32_t n = r.read_u32();
  std::vector<std::string> items;
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) items.push_back(r.read_string());
  return items;
}

void encode_double_seq(Writer& w, const std::vector<double>& items) {
  w.write_u32(static_cast<std::uint32_t>(items.size()));
  for (double d : items) w.write_f64(d);
}

std::vector<double> decode_double_seq(Reader& r) {
  const std::uint32_t n = r.read_u32();
  std::vector<double> items;
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) items.push_back(r.read_f64());
  return items;
}

}  // namespace

void Codec<NodeStatus>::encode(Writer& w, const NodeStatus& v) {
  w.write_id(v.node);
  Codec<orb::ObjectRef>::encode(w, v.lrm);
  w.write_string(v.hostname);
  w.write_f64(v.cpu_mips);
  w.write_i64(v.ram_total);
  w.write_i64(v.disk_total);
  w.write_string(v.os);
  w.write_string(v.arch);
  encode_string_seq(w, v.platforms);
  w.write_i32(v.segment);
  w.write_bool(v.dedicated);
  w.write_f64(v.owner_cpu);
  w.write_f64(v.grid_cpu);
  w.write_f64(v.exportable_cpu);
  w.write_i64(v.free_ram);
  w.write_bool(v.owner_present);
  w.write_bool(v.shareable);
  w.write_i32(v.running_tasks);
  w.write_i64(v.timestamp);
}

NodeStatus Codec<NodeStatus>::decode(Reader& r) {
  NodeStatus v;
  v.node = r.read_id<NodeTag>();
  v.lrm = Codec<orb::ObjectRef>::decode(r);
  v.hostname = r.read_string();
  v.cpu_mips = r.read_f64();
  v.ram_total = r.read_i64();
  v.disk_total = r.read_i64();
  v.os = r.read_string();
  v.arch = r.read_string();
  v.platforms = decode_string_seq(r);
  v.segment = r.read_i32();
  v.dedicated = r.read_bool();
  v.owner_cpu = r.read_f64();
  v.grid_cpu = r.read_f64();
  v.exportable_cpu = r.read_f64();
  v.free_ram = r.read_i64();
  v.owner_present = r.read_bool();
  v.shareable = r.read_bool();
  v.running_tasks = r.read_i32();
  v.timestamp = r.read_i64();
  return v;
}

void Codec<NodeStatusBatch>::encode(Writer& w, const NodeStatusBatch& v) {
  w.write_i32(v.segment);
  w.write_u64(v.epoch);
  encode_sequence(w, v.updates);
}

NodeStatusBatch Codec<NodeStatusBatch>::decode(Reader& r) {
  NodeStatusBatch v;
  v.segment = r.read_i32();
  v.epoch = r.read_u64();
  v.updates = decode_sequence<NodeStatus>(r);
  return v;
}

void Codec<TaskResync>::encode(Writer& w, const TaskResync& v) {
  w.write_id(v.node);
  Codec<orb::ObjectRef>::encode(w, v.lrm);
  w.write_u32(static_cast<std::uint32_t>(v.running.size()));
  for (const TaskId t : v.running) w.write_id(t);
}

TaskResync Codec<TaskResync>::decode(Reader& r) {
  TaskResync v;
  v.node = r.read_id<NodeTag>();
  v.lrm = Codec<orb::ObjectRef>::decode(r);
  const std::uint32_t n = r.read_u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    v.running.push_back(r.read_id<TaskTag>());
  }
  return v;
}

void Codec<SnapshotInstall>::encode(Writer& w, const SnapshotInstall& v) {
  w.write_octets(v.image);
}

SnapshotInstall Codec<SnapshotInstall>::decode(Reader& r) {
  SnapshotInstall v;
  v.image = r.read_octets();
  return v;
}

void Codec<SnapshotInstallReply>::encode(Writer& w,
                                         const SnapshotInstallReply& v) {
  w.write_bool(v.accepted);
  w.write_string(v.reason);
}

SnapshotInstallReply Codec<SnapshotInstallReply>::decode(Reader& r) {
  SnapshotInstallReply v;
  v.accepted = r.read_bool();
  v.reason = r.read_string();
  return v;
}

void Codec<TaskDescriptor>::encode(Writer& w, const TaskDescriptor& v) {
  w.write_id(v.id);
  w.write_id(v.app);
  w.write_u8(static_cast<std::uint8_t>(v.kind));
  w.write_string(v.binary_platform);
  w.write_f64(v.work);
  w.write_i64(v.ram_needed);
  w.write_i64(v.input_bytes);
  w.write_i64(v.output_bytes);
  w.write_i32(v.bsp_rank);
  w.write_i32(v.bsp_processes);
  w.write_i32(v.bsp_supersteps);
  w.write_i64(v.bsp_comm_bytes_per_step);
  w.write_i32(v.checkpoint_every);
  w.write_i64(v.checkpoint_bytes);
  w.write_i64(v.checkpoint_period);
}

TaskDescriptor Codec<TaskDescriptor>::decode(Reader& r) {
  TaskDescriptor v;
  v.id = r.read_id<TaskTag>();
  v.app = r.read_id<AppTag>();
  v.kind = static_cast<AppKind>(r.read_u8());
  v.binary_platform = r.read_string();
  v.work = r.read_f64();
  v.ram_needed = r.read_i64();
  v.input_bytes = r.read_i64();
  v.output_bytes = r.read_i64();
  v.bsp_rank = r.read_i32();
  v.bsp_processes = r.read_i32();
  v.bsp_supersteps = r.read_i32();
  v.bsp_comm_bytes_per_step = r.read_i64();
  v.checkpoint_every = r.read_i32();
  v.checkpoint_bytes = r.read_i64();
  v.checkpoint_period = r.read_i64();
  return v;
}

void Codec<ReservationRequest>::encode(Writer& w, const ReservationRequest& v) {
  w.write_id(v.id);
  w.write_id(v.task);
  w.write_f64(v.cpu_fraction);
  w.write_i64(v.ram);
  w.write_i64(v.hold);
  // Trailing bid extension: written only when a bid is present, so a
  // bid-less request is byte-identical to the pre-economy frame.
  if (v.has_bid()) {
    w.write_string(v.tenant);
    w.write_f64(v.bid_budget);
    w.write_i64(v.bid_deadline);
  }
}

ReservationRequest Codec<ReservationRequest>::decode(Reader& r) {
  ReservationRequest v;
  v.id = r.read_id<ReservationTag>();
  v.task = r.read_id<TaskTag>();
  v.cpu_fraction = r.read_f64();
  v.ram = r.read_i64();
  v.hold = r.read_i64();
  if (r.ok() && r.remaining() > 0) {
    v.tenant = r.read_string();
    v.bid_budget = r.read_f64();
    v.bid_deadline = r.read_i64();
  }
  return v;
}

void Codec<ReservationReply>::encode(Writer& w, const ReservationReply& v) {
  w.write_id(v.id);
  w.write_bool(v.granted);
  w.write_string(v.reason);
  w.write_f64(v.exportable_cpu);
  w.write_i64(v.free_ram);
}

ReservationReply Codec<ReservationReply>::decode(Reader& r) {
  ReservationReply v;
  v.id = r.read_id<ReservationTag>();
  v.granted = r.read_bool();
  v.reason = r.read_string();
  v.exportable_cpu = r.read_f64();
  v.free_ram = r.read_i64();
  return v;
}

void Codec<ExecuteRequest>::encode(Writer& w, const ExecuteRequest& v) {
  w.write_id(v.reservation);
  Codec<TaskDescriptor>::encode(w, v.task);
  Codec<orb::ObjectRef>::encode(w, v.report_to);
  w.write_octets(v.restore_state);
  // Trailing warm-restore extension (preemption-by-migration): absent when
  // there are no peer stores to prefetch from, keeping the frame identical
  // to the pre-economy bytes.
  if (!v.ckpt_peers.empty()) {
    w.write_u32(static_cast<std::uint32_t>(v.ckpt_peers.size()));
    for (const auto& peer : v.ckpt_peers) Codec<orb::ObjectRef>::encode(w, peer);
  }
}

ExecuteRequest Codec<ExecuteRequest>::decode(Reader& r) {
  ExecuteRequest v;
  v.reservation = r.read_id<ReservationTag>();
  v.task = Codec<TaskDescriptor>::decode(r);
  v.report_to = Codec<orb::ObjectRef>::decode(r);
  v.restore_state = r.read_octets();
  if (r.ok() && r.remaining() > 0) {
    const std::uint32_t n = r.read_u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      v.ckpt_peers.push_back(Codec<orb::ObjectRef>::decode(r));
    }
  }
  return v;
}

void Codec<ExecuteReply>::encode(Writer& w, const ExecuteReply& v) {
  w.write_id(v.reservation);
  w.write_bool(v.accepted);
  w.write_string(v.reason);
}

ExecuteReply Codec<ExecuteReply>::decode(Reader& r) {
  ExecuteReply v;
  v.reservation = r.read_id<ReservationTag>();
  v.accepted = r.read_bool();
  v.reason = r.read_string();
  return v;
}

void Codec<TaskReport>::encode(Writer& w, const TaskReport& v) {
  w.write_id(v.task);
  w.write_id(v.node);
  w.write_u8(static_cast<std::uint8_t>(v.outcome));
  w.write_f64(v.work_done);
  w.write_string(v.detail);
}

TaskReport Codec<TaskReport>::decode(Reader& r) {
  TaskReport v;
  v.task = r.read_id<TaskTag>();
  v.node = r.read_id<NodeTag>();
  v.outcome = static_cast<TaskOutcome>(r.read_u8());
  v.work_done = r.read_f64();
  v.detail = r.read_string();
  return v;
}

void Codec<UsageCategory>::encode(Writer& w, const UsageCategory& v) {
  encode_double_seq(w, v.centroid);
  w.write_f64(v.weight);
  w.write_f64(v.weekday_fraction);
}

UsageCategory Codec<UsageCategory>::decode(Reader& r) {
  UsageCategory v;
  v.centroid = decode_double_seq(r);
  v.weight = r.read_f64();
  v.weekday_fraction = r.read_f64();
  return v;
}

void Codec<UsagePatternUpload>::encode(Writer& w, const UsagePatternUpload& v) {
  w.write_id(v.node);
  encode_sequence(w, v.categories);
  w.write_i32(v.days_observed);
}

UsagePatternUpload Codec<UsagePatternUpload>::decode(Reader& r) {
  UsagePatternUpload v;
  v.node = r.read_id<NodeTag>();
  v.categories = decode_sequence<UsageCategory>(r);
  v.days_observed = r.read_i32();
  return v;
}

void Codec<ForecastRequest>::encode(Writer& w, const ForecastRequest& v) {
  w.write_id(v.node);
  w.write_i64(v.at);
  w.write_i64(v.horizon);
}

ForecastRequest Codec<ForecastRequest>::decode(Reader& r) {
  ForecastRequest v;
  v.node = r.read_id<NodeTag>();
  v.at = r.read_i64();
  v.horizon = r.read_i64();
  return v;
}

void Codec<ForecastReply>::encode(Writer& w, const ForecastReply& v) {
  w.write_id(v.node);
  w.write_bool(v.known);
  w.write_f64(v.p_idle_through);
  w.write_i64(v.expected_idle_remaining);
}

ForecastReply Codec<ForecastReply>::decode(Reader& r) {
  ForecastReply v;
  v.node = r.read_id<NodeTag>();
  v.known = r.read_bool();
  v.p_idle_through = r.read_f64();
  v.expected_idle_remaining = r.read_i64();
  return v;
}

void Codec<ResourceRequirements>::encode(Writer& w, const ResourceRequirements& v) {
  w.write_string(v.constraint);
  w.write_string(v.preference);
}

ResourceRequirements Codec<ResourceRequirements>::decode(Reader& r) {
  ResourceRequirements v;
  v.constraint = r.read_string();
  v.preference = r.read_string();
  return v;
}

void Codec<TopologyGroup>::encode(Writer& w, const TopologyGroup& v) {
  w.write_i32(v.nodes);
  w.write_f64(v.min_intra_bandwidth);
}

TopologyGroup Codec<TopologyGroup>::decode(Reader& r) {
  TopologyGroup v;
  v.nodes = r.read_i32();
  v.min_intra_bandwidth = r.read_f64();
  return v;
}

void Codec<TopologySpec>::encode(Writer& w, const TopologySpec& v) {
  encode_sequence(w, v.groups);
  w.write_f64(v.min_inter_bandwidth);
}

TopologySpec Codec<TopologySpec>::decode(Reader& r) {
  TopologySpec v;
  v.groups = decode_sequence<TopologyGroup>(r);
  v.min_inter_bandwidth = r.read_f64();
  return v;
}

void Codec<ApplicationSpec>::encode_base(Writer& w, const ApplicationSpec& v) {
  w.write_id(v.id);
  w.write_string(v.name);
  w.write_u8(static_cast<std::uint8_t>(v.kind));
  encode_sequence(w, v.tasks);
  Codec<ResourceRequirements>::encode(w, v.requirements);
  Codec<TopologySpec>::encode(w, v.topology);
  w.write_i64(v.estimated_duration);
  Codec<orb::ObjectRef>::encode(w, v.notify);
}

ApplicationSpec Codec<ApplicationSpec>::decode_base(Reader& r) {
  ApplicationSpec v;
  v.id = r.read_id<AppTag>();
  v.name = r.read_string();
  v.kind = static_cast<AppKind>(r.read_u8());
  v.tasks = decode_sequence<TaskDescriptor>(r);
  v.requirements = Codec<ResourceRequirements>::decode(r);
  v.topology = Codec<TopologySpec>::decode(r);
  v.estimated_duration = r.read_i64();
  v.notify = Codec<orb::ObjectRef>::decode(r);
  return v;
}

void Codec<ApplicationSpec>::encode(Writer& w, const ApplicationSpec& v) {
  encode_base(w, v);
  // Trailing tenant/bid extension on the submit frame: a spec without a bid
  // encodes to exactly the pre-economy bytes.
  if (v.has_bid()) {
    w.write_string(v.tenant);
    w.write_f64(v.bid_budget);
    w.write_i64(v.bid_deadline);
  }
}

ApplicationSpec Codec<ApplicationSpec>::decode(Reader& r) {
  ApplicationSpec v = decode_base(r);
  if (r.ok() && r.remaining() > 0) {
    v.tenant = r.read_string();
    v.bid_budget = r.read_f64();
    v.bid_deadline = r.read_i64();
  }
  return v;
}

void Codec<SubmitReply>::encode(Writer& w, const SubmitReply& v) {
  w.write_id(v.app);
  w.write_bool(v.accepted);
  w.write_string(v.reason);
}

SubmitReply Codec<SubmitReply>::decode(Reader& r) {
  SubmitReply v;
  v.app = r.read_id<AppTag>();
  v.accepted = r.read_bool();
  v.reason = r.read_string();
  return v;
}

void Codec<AppEvent>::encode(Writer& w, const AppEvent& v) {
  w.write_id(v.app);
  w.write_id(v.task);
  w.write_u8(static_cast<std::uint8_t>(v.kind));
  w.write_id(v.node);
  w.write_i64(v.at);
  w.write_string(v.detail);
}

AppEvent Codec<AppEvent>::decode(Reader& r) {
  AppEvent v;
  v.app = r.read_id<AppTag>();
  v.task = r.read_id<TaskTag>();
  v.kind = static_cast<AppEventKind>(r.read_u8());
  v.node = r.read_id<NodeTag>();
  v.at = r.read_i64();
  v.detail = r.read_string();
  return v;
}

void Codec<BspComputeRequest>::encode(Writer& w, const BspComputeRequest& v) {
  w.write_id(v.task);
  w.write_i32(v.rank);
  w.write_i64(v.superstep);
  w.write_f64(v.work);
  Codec<orb::ObjectRef>::encode(w, v.notify);
}

BspComputeRequest Codec<BspComputeRequest>::decode(Reader& r) {
  BspComputeRequest v;
  v.task = r.read_id<TaskTag>();
  v.rank = r.read_i32();
  v.superstep = r.read_i64();
  v.work = r.read_f64();
  v.notify = Codec<orb::ObjectRef>::decode(r);
  return v;
}

void Codec<ClusterSummary>::encode(Writer& w, const ClusterSummary& v) {
  w.write_id(v.cluster);
  Codec<orb::ObjectRef>::encode(w, v.grm);
  w.write_i32(v.total_nodes);
  w.write_i32(v.shareable_nodes);
  w.write_f64(v.total_exportable_mips);
  w.write_i64(v.max_free_ram_mb);
  encode_string_seq(w, v.platforms);
  w.write_i64(v.timestamp);
}

ClusterSummary Codec<ClusterSummary>::decode(Reader& r) {
  ClusterSummary v;
  v.cluster = r.read_id<ClusterTag>();
  v.grm = Codec<orb::ObjectRef>::decode(r);
  v.total_nodes = r.read_i32();
  v.shareable_nodes = r.read_i32();
  v.total_exportable_mips = r.read_f64();
  v.max_free_ram_mb = r.read_i64();
  v.platforms = decode_string_seq(r);
  v.timestamp = r.read_i64();
  return v;
}

void Codec<RemoteSubmit>::encode(Writer& w, const RemoteSubmit& v) {
  // The nested spec uses the base (extension-free) layout; the bid rides a
  // trailing extension on *this* frame, so the pre-economy wire bytes are
  // reproduced exactly when no bid is present.
  Codec<ApplicationSpec>::encode_base(w, v.spec);
  w.write_i32(v.ttl);
  w.write_u32(static_cast<std::uint32_t>(v.visited_clusters.size()));
  for (auto c : v.visited_clusters) w.write_u64(c);
  Codec<orb::ObjectRef>::encode(w, v.origin_grm);
  if (v.spec.has_bid()) {
    w.write_string(v.spec.tenant);
    w.write_f64(v.spec.bid_budget);
    w.write_i64(v.spec.bid_deadline);
  }
}

RemoteSubmit Codec<RemoteSubmit>::decode(Reader& r) {
  RemoteSubmit v;
  v.spec = Codec<ApplicationSpec>::decode_base(r);
  v.ttl = r.read_i32();
  const std::uint32_t n = r.read_u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    v.visited_clusters.push_back(r.read_u64());
  }
  v.origin_grm = Codec<orb::ObjectRef>::decode(r);
  if (r.ok() && r.remaining() > 0) {
    v.spec.tenant = r.read_string();
    v.spec.bid_budget = r.read_f64();
    v.spec.bid_deadline = r.read_i64();
  }
  return v;
}

void Codec<RemoteAdopted>::encode(Writer& w, const RemoteAdopted& v) {
  w.write_id(v.app);
  w.write_id(v.task);
  w.write_id(v.by_cluster);
  w.write_i32(v.hops);
}

RemoteAdopted Codec<RemoteAdopted>::decode(Reader& r) {
  RemoteAdopted v;
  v.app = r.read_id<AppTag>();
  v.task = r.read_id<TaskTag>();
  v.by_cluster = r.read_id<ClusterTag>();
  v.hops = r.read_i32();
  return v;
}

void Codec<BspChunkDone>::encode(Writer& w, const BspChunkDone& v) {
  w.write_id(v.task);
  w.write_i32(v.rank);
  w.write_i64(v.superstep);
  w.write_id(v.node);
}

BspChunkDone Codec<BspChunkDone>::decode(Reader& r) {
  BspChunkDone v;
  v.task = r.read_id<TaskTag>();
  v.rank = r.read_i32();
  v.superstep = r.read_i64();
  v.node = r.read_id<NodeTag>();
  return v;
}

// --- Checkpoint data plane --------------------------------------------------

namespace {

void encode_hash(Writer& w, const CkptHash& h) {
  for (std::uint8_t b : h) w.write_u8(b);
}

CkptHash decode_hash(Reader& r) {
  CkptHash h{};
  for (auto& b : h) b = r.read_u8();
  return h;
}

void encode_ref_seq(Writer& w, const std::vector<orb::ObjectRef>& refs) {
  w.write_u32(static_cast<std::uint32_t>(refs.size()));
  for (const auto& ref : refs) Codec<orb::ObjectRef>::encode(w, ref);
}

std::vector<orb::ObjectRef> decode_ref_seq(Reader& r) {
  const std::uint32_t n = r.read_u32();
  std::vector<orb::ObjectRef> refs;
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    refs.push_back(Codec<orb::ObjectRef>::decode(r));
  }
  return refs;
}

}  // namespace

void Codec<CkptChunkRef>::encode(Writer& w, const CkptChunkRef& v) {
  encode_hash(w, v.hash);
  w.write_u32(v.raw_size);
}

CkptChunkRef Codec<CkptChunkRef>::decode(Reader& r) {
  CkptChunkRef v;
  v.hash = decode_hash(r);
  v.raw_size = r.read_u32();
  return v;
}

void Codec<CkptManifest>::encode(Writer& w, const CkptManifest& v) {
  w.write_id(v.app);
  w.write_i32(v.rank);
  w.write_i64(v.version);
  w.write_u8(v.chunker);
  w.write_u32(v.chunk_size);
  w.write_u64(v.image_bytes);
  w.write_u32(static_cast<std::uint32_t>(v.chunks.size()));
  for (const auto& c : v.chunks) Codec<CkptChunkRef>::encode(w, c);
}

CkptManifest Codec<CkptManifest>::decode(Reader& r) {
  CkptManifest v;
  v.app = r.read_id<AppTag>();
  v.rank = r.read_i32();
  v.version = r.read_i64();
  v.chunker = r.read_u8();
  v.chunk_size = r.read_u32();
  v.image_bytes = r.read_u64();
  const std::uint32_t n = r.read_u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    v.chunks.push_back(Codec<CkptChunkRef>::decode(r));
  }
  return v;
}

void Codec<CkptManifestOffer>::encode(Writer& w, const CkptManifestOffer& v) {
  Codec<CkptManifest>::encode(w, v.manifest);
}

CkptManifestOffer Codec<CkptManifestOffer>::decode(Reader& r) {
  CkptManifestOffer v;
  v.manifest = Codec<CkptManifest>::decode(r);
  return v;
}

void Codec<CkptChunkNeed>::encode(Writer& w, const CkptChunkNeed& v) {
  w.write_bool(v.accepted);
  w.write_string(v.reason);
  w.write_u32(static_cast<std::uint32_t>(v.missing.size()));
  for (auto i : v.missing) w.write_u32(i);
}

CkptChunkNeed Codec<CkptChunkNeed>::decode(Reader& r) {
  CkptChunkNeed v;
  v.accepted = r.read_bool();
  v.reason = r.read_string();
  const std::uint32_t n = r.read_u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) v.missing.push_back(r.read_u32());
  return v;
}

void Codec<CkptChunkData>::encode(Writer& w, const CkptChunkData& v) {
  encode_hash(w, v.hash);
  w.write_u8(v.encoding);
  w.write_u32(v.raw_size);
  w.write_octets(v.payload);
}

CkptChunkData Codec<CkptChunkData>::decode(Reader& r) {
  CkptChunkData v;
  v.hash = decode_hash(r);
  v.encoding = r.read_u8();
  v.raw_size = r.read_u32();
  v.payload = r.read_octets();
  return v;
}

void Codec<CkptChunkPut>::encode(Writer& w, const CkptChunkPut& v) {
  w.write_id(v.app);
  w.write_u32(static_cast<std::uint32_t>(v.chunks.size()));
  for (const auto& c : v.chunks) Codec<CkptChunkData>::encode(w, c);
}

CkptChunkPut Codec<CkptChunkPut>::decode(Reader& r) {
  CkptChunkPut v;
  v.app = r.read_id<AppTag>();
  const std::uint32_t n = r.read_u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    v.chunks.push_back(Codec<CkptChunkData>::decode(r));
  }
  return v;
}

void Codec<CkptPutReply>::encode(Writer& w, const CkptPutReply& v) {
  w.write_i32(v.stored);
  w.write_i32(v.rejected);
}

CkptPutReply Codec<CkptPutReply>::decode(Reader& r) {
  CkptPutReply v;
  v.stored = r.read_i32();
  v.rejected = r.read_i32();
  return v;
}

void Codec<CkptManifestInstall>::encode(Writer& w, const CkptManifestInstall& v) {
  Codec<CkptManifest>::encode(w, v.manifest);
  w.write_i64(v.prune_below);
}

CkptManifestInstall Codec<CkptManifestInstall>::decode(Reader& r) {
  CkptManifestInstall v;
  v.manifest = Codec<CkptManifest>::decode(r);
  v.prune_below = r.read_i64();
  return v;
}

void Codec<CkptInstallReply>::encode(Writer& w, const CkptInstallReply& v) {
  w.write_bool(v.accepted);
  w.write_string(v.reason);
}

CkptInstallReply Codec<CkptInstallReply>::decode(Reader& r) {
  CkptInstallReply v;
  v.accepted = r.read_bool();
  v.reason = r.read_string();
  return v;
}

void Codec<PreemptRequest>::encode(Writer& w, const PreemptRequest& v) {
  w.write_id(v.task);
  w.write_u32(static_cast<std::uint32_t>(v.peers.size()));
  for (const auto& peer : v.peers) Codec<orb::ObjectRef>::encode(w, peer);
}

PreemptRequest Codec<PreemptRequest>::decode(Reader& r) {
  PreemptRequest v;
  v.task = r.read_id<TaskTag>();
  const std::uint32_t n = r.read_u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    v.peers.push_back(Codec<orb::ObjectRef>::decode(r));
  }
  return v;
}

void Codec<CkptManifestQuery>::encode(Writer& w, const CkptManifestQuery& v) {
  w.write_id(v.app);
  w.write_i32(v.rank);
}

CkptManifestQuery Codec<CkptManifestQuery>::decode(Reader& r) {
  CkptManifestQuery v;
  v.app = r.read_id<AppTag>();
  v.rank = r.read_i32();
  return v;
}

void Codec<CkptManifestQueryReply>::encode(Writer& w,
                                           const CkptManifestQueryReply& v) {
  w.write_bool(v.found);
  Codec<CkptManifest>::encode(w, v.manifest);
}

CkptManifestQueryReply Codec<CkptManifestQueryReply>::decode(Reader& r) {
  CkptManifestQueryReply v;
  v.found = r.read_bool();
  v.manifest = Codec<CkptManifest>::decode(r);
  return v;
}

void Codec<CkptChunkGet>::encode(Writer& w, const CkptChunkGet& v) {
  w.write_u32(static_cast<std::uint32_t>(v.hashes.size()));
  for (const auto& h : v.hashes) encode_hash(w, h);
}

CkptChunkGet Codec<CkptChunkGet>::decode(Reader& r) {
  CkptChunkGet v;
  const std::uint32_t n = r.read_u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) v.hashes.push_back(decode_hash(r));
  return v;
}

void Codec<CkptChunkGetReply>::encode(Writer& w, const CkptChunkGetReply& v) {
  w.write_u32(static_cast<std::uint32_t>(v.chunks.size()));
  for (const auto& c : v.chunks) Codec<CkptChunkData>::encode(w, c);
}

CkptChunkGetReply Codec<CkptChunkGetReply>::decode(Reader& r) {
  CkptChunkGetReply v;
  const std::uint32_t n = r.read_u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    v.chunks.push_back(Codec<CkptChunkData>::decode(r));
  }
  return v;
}

void Codec<CkptSaveRequest>::encode(Writer& w, const CkptSaveRequest& v) {
  w.write_id(v.app);
  w.write_i32(v.rank);
  w.write_i64(v.version);
  w.write_u64(v.epoch);
  w.write_i64(v.image_bytes);
  Codec<orb::ObjectRef>::encode(w, v.repository);
  encode_ref_seq(w, v.peers);
  w.write_i64(v.prune_below);
  Codec<orb::ObjectRef>::encode(w, v.notify);
}

CkptSaveRequest Codec<CkptSaveRequest>::decode(Reader& r) {
  CkptSaveRequest v;
  v.app = r.read_id<AppTag>();
  v.rank = r.read_i32();
  v.version = r.read_i64();
  v.epoch = r.read_u64();
  v.image_bytes = r.read_i64();
  v.repository = Codec<orb::ObjectRef>::decode(r);
  v.peers = decode_ref_seq(r);
  v.prune_below = r.read_i64();
  v.notify = Codec<orb::ObjectRef>::decode(r);
  return v;
}

void Codec<CkptSaveDone>::encode(Writer& w, const CkptSaveDone& v) {
  w.write_id(v.app);
  w.write_i32(v.rank);
  w.write_i64(v.version);
  w.write_u64(v.epoch);
  w.write_bool(v.ok);
  w.write_i64(v.image_bytes);
  w.write_i32(v.chunks_total);
  w.write_i32(v.chunks_shipped);
  w.write_i32(v.chunks_deduped);
  w.write_i64(v.bytes_shipped);
}

CkptSaveDone Codec<CkptSaveDone>::decode(Reader& r) {
  CkptSaveDone v;
  v.app = r.read_id<AppTag>();
  v.rank = r.read_i32();
  v.version = r.read_i64();
  v.epoch = r.read_u64();
  v.ok = r.read_bool();
  v.image_bytes = r.read_i64();
  v.chunks_total = r.read_i32();
  v.chunks_shipped = r.read_i32();
  v.chunks_deduped = r.read_i32();
  v.bytes_shipped = r.read_i64();
  return v;
}

void Codec<CkptRestoreRequest>::encode(Writer& w, const CkptRestoreRequest& v) {
  w.write_id(v.app);
  w.write_i32(v.rank);
  w.write_i64(v.version);
  w.write_u64(v.epoch);
  Codec<CkptManifest>::encode(w, v.manifest);
  Codec<orb::ObjectRef>::encode(w, v.repository);
  encode_ref_seq(w, v.peers);
  Codec<orb::ObjectRef>::encode(w, v.notify);
}

CkptRestoreRequest Codec<CkptRestoreRequest>::decode(Reader& r) {
  CkptRestoreRequest v;
  v.app = r.read_id<AppTag>();
  v.rank = r.read_i32();
  v.version = r.read_i64();
  v.epoch = r.read_u64();
  v.manifest = Codec<CkptManifest>::decode(r);
  v.repository = Codec<orb::ObjectRef>::decode(r);
  v.peers = decode_ref_seq(r);
  v.notify = Codec<orb::ObjectRef>::decode(r);
  return v;
}

void Codec<CkptRestoreDone>::encode(Writer& w, const CkptRestoreDone& v) {
  w.write_id(v.app);
  w.write_i32(v.rank);
  w.write_i64(v.version);
  w.write_u64(v.epoch);
  w.write_bool(v.ok);
  w.write_i32(v.chunks_local);
  w.write_i32(v.chunks_from_peers);
  w.write_i32(v.chunks_from_repository);
  w.write_i64(v.bytes_pulled);
}

CkptRestoreDone Codec<CkptRestoreDone>::decode(Reader& r) {
  CkptRestoreDone v;
  v.app = r.read_id<AppTag>();
  v.rank = r.read_i32();
  v.version = r.read_i64();
  v.epoch = r.read_u64();
  v.ok = r.read_bool();
  v.chunks_local = r.read_i32();
  v.chunks_from_peers = r.read_i32();
  v.chunks_from_repository = r.read_i32();
  v.bytes_pulled = r.read_i64();
  return v;
}

}  // namespace integrade::cdr
