#include "protocol/properties.hpp"

namespace integrade::protocol {

namespace {

std::int64_t to_mb(Bytes b) { return b / kMiB; }

}  // namespace

services::PropertySet to_properties(const NodeStatus& s) {
  services::PropertySet props;
  update_properties(s, props);
  return props;
}

void update_properties(const NodeStatus& s, services::PropertySet& props) {
  props.set(kPropNodeId, cdr::Value(static_cast<std::int64_t>(s.node.value)));
  props.set(kPropHostname, cdr::Value(s.hostname));
  props.set(kPropCpuMips, cdr::Value(s.cpu_mips));
  props.set(kPropRamTotal, cdr::Value(to_mb(s.ram_total)));
  props.set(kPropDiskTotal, cdr::Value(to_mb(s.disk_total)));
  props.set(kPropOs, cdr::Value(s.os));
  props.set(kPropArch, cdr::Value(s.arch));
  cdr::ValueList platforms;
  platforms.reserve(s.platforms.size());
  for (const auto& p : s.platforms) platforms.emplace_back(p);
  props.set(kPropPlatforms, cdr::Value(std::move(platforms)));
  props.set(kPropSegment, cdr::Value(static_cast<std::int64_t>(s.segment)));
  props.set(kPropDedicated, cdr::Value(s.dedicated));
  props.set(kPropOwnerCpu, cdr::Value(s.owner_cpu));
  props.set(kPropGridCpu, cdr::Value(s.grid_cpu));
  props.set(kPropExportableCpu, cdr::Value(s.exportable_cpu));
  props.set(kPropExportableMips, cdr::Value(s.exportable_cpu * s.cpu_mips));
  props.set(kPropFreeRam, cdr::Value(to_mb(s.free_ram)));
  props.set(kPropOwnerPresent, cdr::Value(s.owner_present));
  props.set(kPropShareable, cdr::Value(s.shareable));
  props.set(kPropRunningTasks,
            cdr::Value(static_cast<std::int64_t>(s.running_tasks)));
  props.set(kPropTimestamp, cdr::Value(static_cast<std::int64_t>(s.timestamp)));
}

NodeStatus from_properties(const services::PropertySet& props) {
  NodeStatus s;
  s.node = NodeId(static_cast<std::uint64_t>(props.get_int(kPropNodeId).value_or(-1)));
  s.hostname = props.get_string(kPropHostname).value_or("");
  s.cpu_mips = props.get_real(kPropCpuMips).value_or(0.0);
  s.ram_total = props.get_int(kPropRamTotal).value_or(0) * kMiB;
  s.disk_total = props.get_int(kPropDiskTotal).value_or(0) * kMiB;
  s.os = props.get_string(kPropOs).value_or("");
  s.arch = props.get_string(kPropArch).value_or("");
  const auto& platforms = props.get(kPropPlatforms);
  if (platforms.is_list()) {
    for (const auto& v : platforms.as_list()) {
      if (v.is_string()) s.platforms.push_back(v.as_string());
    }
  }
  s.segment = static_cast<std::int32_t>(props.get_int(kPropSegment).value_or(0));
  s.dedicated = props.get_bool(kPropDedicated).value_or(false);
  s.owner_cpu = props.get_real(kPropOwnerCpu).value_or(0.0);
  s.grid_cpu = props.get_real(kPropGridCpu).value_or(0.0);
  s.exportable_cpu = props.get_real(kPropExportableCpu).value_or(0.0);
  s.free_ram = props.get_int(kPropFreeRam).value_or(0) * kMiB;
  s.owner_present = props.get_bool(kPropOwnerPresent).value_or(false);
  s.shareable = props.get_bool(kPropShareable).value_or(false);
  s.running_tasks =
      static_cast<std::int32_t>(props.get_int(kPropRunningTasks).value_or(0));
  s.timestamp = props.get_int(kPropTimestamp).value_or(0);
  return s;
}

}  // namespace integrade::protocol
