// NodeStatus <-> Trader property set conversion.
//
// The GRM stores node status in its Trading service (paper §5), so a status
// update becomes a property set and a scheduling query becomes a constraint
// over these property names. The names below are the public schema ASCT
// constraint expressions are written against; README documents them.
#pragma once

#include "protocol/messages.hpp"
#include "services/property.hpp"

namespace integrade::protocol {

/// Service type under which node offers are exported.
inline constexpr const char* kNodeServiceType = "integrade::Node";

// Property-name schema.
inline constexpr const char* kPropNodeId = "node_id";
inline constexpr const char* kPropHostname = "hostname";
inline constexpr const char* kPropCpuMips = "cpu_mips";
inline constexpr const char* kPropRamTotal = "ram_total_mb";
inline constexpr const char* kPropDiskTotal = "disk_total_mb";
inline constexpr const char* kPropOs = "os";
inline constexpr const char* kPropArch = "arch";
inline constexpr const char* kPropPlatforms = "platforms";
inline constexpr const char* kPropSegment = "segment";
inline constexpr const char* kPropDedicated = "dedicated";
inline constexpr const char* kPropOwnerCpu = "owner_cpu";
inline constexpr const char* kPropGridCpu = "grid_cpu";
inline constexpr const char* kPropExportableCpu = "exportable_cpu";
inline constexpr const char* kPropExportableMips = "exportable_mips";
inline constexpr const char* kPropFreeRam = "free_ram_mb";
inline constexpr const char* kPropOwnerPresent = "owner_present";
inline constexpr const char* kPropShareable = "shareable";
inline constexpr const char* kPropRunningTasks = "running_tasks";
inline constexpr const char* kPropTimestamp = "timestamp_us";

services::PropertySet to_properties(const NodeStatus& status);

/// Overwrite `props` in place with `status`'s fields. Equivalent to
/// `props = to_properties(status)` but reuses the set's existing map nodes
/// and key strings — the allocation-light path the Information Update
/// Protocol takes for every heartbeat refresh of an existing offer.
void update_properties(const NodeStatus& status, services::PropertySet& props);

/// Reconstruct the scheduling-relevant fields from a property set. Fields
/// not represented in the schema (e.g. the LRM object ref, which the Trader
/// keeps as the offer's provider) are left defaulted.
NodeStatus from_properties(const services::PropertySet& props);

}  // namespace integrade::protocol
