// Canonical span names for the task-lifecycle trace tree (single source of
// truth shared by the instrumented components, chaos tests, and the E13
// analyzer — see docs/observability.md for the tree shape):
//
//   asct.submit                      root, one per application submission
//   └─ grm.submit                    admission on the Cluster Manager
//      └─ grm.task                   per task, submission → final completion
//         ├─ trader.query            candidate selection, one per wave
//         ├─ grm.reserve             one per negotiation round
//         │  └─ lrm.reserve          provider-side grant/refuse
//         ├─ grm.execute             after a granted reservation
//         │  └─ lrm.execute          provider-side admission
//         │     └─ lrm.run           task resident on the node
//         │        └─ grm.report     outcome received back at the GRM
#pragma once

namespace integrade::protocol {

inline constexpr const char* kSpanAsctSubmit = "asct.submit";
inline constexpr const char* kSpanGrmSubmit = "grm.submit";
inline constexpr const char* kSpanGrmTask = "grm.task";
inline constexpr const char* kSpanTraderQuery = "trader.query";
inline constexpr const char* kSpanGrmReserve = "grm.reserve";
inline constexpr const char* kSpanGrmExecute = "grm.execute";
inline constexpr const char* kSpanGrmReport = "grm.report";
inline constexpr const char* kSpanLrmReserve = "lrm.reserve";
inline constexpr const char* kSpanLrmExecute = "lrm.execute";
inline constexpr const char* kSpanLrmRun = "lrm.run";

}  // namespace integrade::protocol
