// Wire messages of InteGrade's intra- and inter-cluster protocols.
//
// Three protocol families (paper §4):
//   * Information Update Protocol — LRMs push NodeStatus to their GRM
//     periodically; the GRM stores it in its Trader.
//   * Resource Reservation & Execution Protocol — the GRM picks candidate
//     nodes from (possibly stale) Trader state as a *hint*, then negotiates
//     directly: Reserve -> (granted) -> Execute -> ... -> TaskCompletion.
//   * Usage Pattern Protocol — LUPA uploads per-node behavioural categories
//     to the GUPA; the GRM asks the GUPA for idleness forecasts.
//
// Every struct here has a CDR codec (messages.cpp) and is round-trip tested
// in tests/protocol_test.cpp under both byte orders.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cdr/cdr.hpp"
#include "common/types.hpp"
#include "orb/ior.hpp"

namespace integrade::protocol {

// ---------------------------------------------------------------------------
// Information Update Protocol
// ---------------------------------------------------------------------------

/// Periodic node status: the LRM's full self-description. Static fields are
/// resent each time (the paper's protocol is a stateless refresh, which
/// also serves as the LRM's liveness heartbeat).
struct NodeStatus {
  NodeId node;
  orb::ObjectRef lrm;  // where to negotiate reservations

  // Static description.
  std::string hostname;
  Mips cpu_mips = 0;
  Bytes ram_total = 0;
  Bytes disk_total = 0;
  std::string os;
  std::string arch;
  std::vector<std::string> platforms;
  std::int32_t segment = 0;  // network segment, for topology-aware placement
  bool dedicated = false;    // Dedicated Node (no owner, no LUPA)

  // Dynamic state.
  double owner_cpu = 0.0;       // owner demand right now, [0,1]
  double grid_cpu = 0.0;        // fraction already granted to grid tasks
  double exportable_cpu = 0.0;  // what NCC policy allows for new grid work
  Bytes free_ram = 0;
  bool owner_present = false;
  bool shareable = false;  // NCC verdict: accepting grid work right now
  std::int32_t running_tasks = 0;
  SimTime timestamp = 0;

  bool operator==(const NodeStatus&) const = default;
};

/// A segment's worth of heartbeats coalesced into one frame. Per-segment
/// batchers poll their members on a single timer tick and ship all statuses
/// in one ORB message, so 50 nodes cost the GRM one dispatch (applied as a
/// Trader::refresh loop) and the simulation one event instead of 50. The
/// frame is atomic on the wire: a partition or loss drops *all* of a
/// segment's updates for that period, never a prefix.
struct NodeStatusBatch {
  std::int32_t segment = 0;  // reporting segment, for diagnostics
  /// GRM incarnation the sender believes it is reporting to. Bumped by the
  /// batcher when it fails over to the standby, so an adopting GRM can drop
  /// stale batches still draining from the old primary's queues instead of
  /// resurrecting dead offers. 0 = unversioned (legacy senders, unit
  /// tests); never dropped.
  std::uint64_t epoch = 0;
  std::vector<NodeStatus> updates;

  bool operator==(const NodeStatusBatch&) const = default;
};

// ---------------------------------------------------------------------------
// Application & task descriptors
// ---------------------------------------------------------------------------

enum class AppKind : std::uint8_t {
  kSequential = 0,  // one task
  kParametric = 1,  // independent tasks (bag-of-tasks / master-worker)
  kBsp = 2,         // communicating parallel app, BSP model (paper §3)
};

const char* app_kind_name(AppKind k);

/// One schedulable unit. For BSP apps, one task per process rank.
struct TaskDescriptor {
  TaskId id;
  AppId app;
  AppKind kind = AppKind::kSequential;
  std::string binary_platform;  // must be in the node's platform list
  MInstr work = 0;              // total compute demand
  Bytes ram_needed = 0;
  Bytes input_bytes = 0;   // staged in before execution
  Bytes output_bytes = 0;  // shipped back on completion

  // BSP-only fields.
  std::int32_t bsp_rank = -1;
  std::int32_t bsp_processes = 0;
  std::int32_t bsp_supersteps = 0;
  Bytes bsp_comm_bytes_per_step = 0;  // h-relation volume per superstep
  std::int32_t checkpoint_every = 0;  // supersteps between checkpoints; 0 = off
  Bytes checkpoint_bytes = 0;         // serialized state size

  /// Sequential/parametric tasks: periodic checkpoint cadence (0 = off).
  SimDuration checkpoint_period = 0;

  bool operator==(const TaskDescriptor&) const = default;
};

// ---------------------------------------------------------------------------
// Application submission (ASCT -> GRM)
// ---------------------------------------------------------------------------

/// Execution prerequisites and preferences, as the paper's ASCT describes:
/// "hardware and software platforms, resource requirements such as minimum
/// memory, and preferences, like rather executing on a faster CPU".
/// Expressed in the Trader constraint/preference language over the node
/// property schema (protocol/properties.hpp).
struct ResourceRequirements {
  std::string constraint;  // empty = match any shareable node
  std::string preference;  // empty = discovery order

  bool operator==(const ResourceRequirements&) const = default;
};

/// Virtual topology request (paper §3's "two groups of 50 nodes..." example).
struct TopologyGroup {
  std::int32_t nodes = 0;
  BytesPerSec min_intra_bandwidth = 0;  // within the group

  bool operator==(const TopologyGroup&) const = default;
};

struct TopologySpec {
  std::vector<TopologyGroup> groups;
  BytesPerSec min_inter_bandwidth = 0;  // between any two groups

  [[nodiscard]] bool empty() const { return groups.empty(); }
  bool operator==(const TopologySpec&) const = default;
};

struct ApplicationSpec {
  AppId id;
  std::string name;
  AppKind kind = AppKind::kSequential;
  std::vector<TaskDescriptor> tasks;
  ResourceRequirements requirements;
  TopologySpec topology;  // empty unless the user constrained placement
  /// User's runtime estimate; the GRM feeds it to GUPA forecasts so tasks
  /// land on nodes likely to stay idle long enough.
  SimDuration estimated_duration = 0;
  /// Where app events (scheduled/completed/evicted/done) are delivered.
  orb::ObjectRef notify;

  // Scheduling economy (optional). The tenant this app bills to plus its
  // bid: a budget (abstract currency, feeds fair-share weight resolution)
  // and a completion deadline relative to submit time. All three ride a
  // *trailing* extension on the wire — a spec with the defaults encodes to
  // exactly the pre-economy bytes, and old peers ignore the extension.
  std::string tenant;
  double bid_budget = 0.0;
  SimDuration bid_deadline = 0;  // 0 = no deadline bid

  [[nodiscard]] bool has_bid() const {
    return !tenant.empty() || bid_budget != 0.0 || bid_deadline != 0;
  }

  bool operator==(const ApplicationSpec&) const = default;
};

struct SubmitReply {
  AppId app;
  bool accepted = false;
  std::string reason;

  bool operator==(const SubmitReply&) const = default;
};

/// Application lifecycle notifications (GRM -> ASCT).
enum class AppEventKind : std::uint8_t {
  kTaskScheduled = 0,
  kTaskCompleted = 1,
  kTaskEvicted = 2,
  kTaskRescheduled = 3,
  kAppCompleted = 4,
  kAppFailed = 5,
};

const char* app_event_kind_name(AppEventKind k);

struct AppEvent {
  AppId app;
  TaskId task;  // invalid for app-level events
  AppEventKind kind = AppEventKind::kTaskScheduled;
  NodeId node;  // where, when applicable
  SimTime at = 0;
  std::string detail;

  bool operator==(const AppEvent&) const = default;
};

// ---------------------------------------------------------------------------
// BSP chunk execution (coordinator <-> LRM)
// ---------------------------------------------------------------------------

struct BspComputeRequest {
  TaskId task;
  std::int32_t rank = 0;
  std::int64_t superstep = 0;
  MInstr work = 0;
  orb::ObjectRef notify;  // coordinator; receives BspChunkDone

  bool operator==(const BspComputeRequest&) const = default;
};

struct BspChunkDone {
  TaskId task;
  std::int32_t rank = 0;
  std::int64_t superstep = 0;
  NodeId node;

  bool operator==(const BspChunkDone&) const = default;
};

struct CancelTask {
  TaskId task;
  bool operator==(const CancelTask&) const = default;
};

struct CancelApp {
  AppId app;
  bool operator==(const CancelApp&) const = default;
};

/// BOINC-style pull protocol: a worker asks the master for work and gets a
/// unit (or nothing). Defined here so the baseline speaks the same wire
/// format as everything else.
struct WorkReply {
  bool has_work = false;
  TaskDescriptor task;
  bool operator==(const WorkReply&) const = default;
};

// ---------------------------------------------------------------------------
// Inter-cluster protocol (paper §4: clusters "arranged in a hierarchy";
// the MK02 extension of the 2K resource-management protocols)
// ---------------------------------------------------------------------------

/// Periodic roll-up a GRM pushes to its parent cluster manager, so parents
/// can route work toward capacity without tracking individual nodes.
struct ClusterSummary {
  ClusterId cluster;
  orb::ObjectRef grm;
  std::int32_t total_nodes = 0;
  std::int32_t shareable_nodes = 0;
  double total_exportable_mips = 0.0;
  std::int64_t max_free_ram_mb = 0;
  std::vector<std::string> platforms;  // union over nodes
  SimTime timestamp = 0;

  bool operator==(const ClusterSummary&) const = default;
};

/// A task travelling the hierarchy looking for a cluster that can host it.
/// Exactly one copy walks the tree (children-with-capacity first, then the
/// parent); `visited` breaks cycles, `ttl` bounds the walk.
struct RemoteSubmit {
  ApplicationSpec spec;  // single-task spec
  std::int32_t ttl = 8;
  std::vector<std::uint64_t> visited_clusters;
  orb::ObjectRef origin_grm;  // receives RemoteAdopted

  bool operator==(const RemoteSubmit&) const = default;
};

struct RemoteAdopted {
  AppId app;
  TaskId task;
  ClusterId by_cluster;
  std::int32_t hops = 0;

  bool operator==(const RemoteAdopted&) const = default;
};

// ---------------------------------------------------------------------------
// Resource Reservation & Execution Protocol
// ---------------------------------------------------------------------------

struct ReservationRequest {
  ReservationId id;  // assigned by the GRM
  TaskId task;
  double cpu_fraction = 1.0;  // of the node's exportable CPU
  Bytes ram = 0;
  /// How long the LRM holds the reservation awaiting the Execute message
  /// before reclaiming it.
  SimDuration hold = 30 * kSecond;

  /// Scheduling economy (optional): the requesting tenant and its bid, so
  /// node-local NCC policy (`bid_filter = <constraint>`) can accept or
  /// refuse the reservation on economic terms. Trailing wire extension —
  /// byte-invisible when all three hold their defaults.
  std::string tenant;
  double bid_budget = 0.0;
  SimDuration bid_deadline = 0;  // remaining time to the app deadline

  [[nodiscard]] bool has_bid() const {
    return !tenant.empty() || bid_budget != 0.0 || bid_deadline != 0;
  }

  bool operator==(const ReservationRequest&) const = default;
};

struct ReservationReply {
  ReservationId id;
  bool granted = false;
  std::string reason;  // on refusal: "owner present", "no RAM", ...
  /// LRM's fresh status, piggy-backed so the GRM can correct its hint
  /// immediately instead of waiting for the next periodic update.
  double exportable_cpu = 0.0;
  Bytes free_ram = 0;

  bool operator==(const ReservationReply&) const = default;
};

struct ExecuteRequest {
  ReservationId reservation;
  TaskDescriptor task;
  /// Where the LRM must report completion/eviction (the GRM's execution
  /// manager object).
  orb::ObjectRef report_to;
  /// CDR-encoded state to resume from (empty = start fresh). For sequential
  /// tasks this is a SequentialState carrying absolute progress, so a task
  /// evicted twice never re-does checkpointed work.
  std::vector<std::uint8_t> restore_state;

  /// Checkpoint-data-plane peers holding this task's latest image chunks
  /// (preemption-by-migration path): the executing node's agent prefetches
  /// from these stores so the restore starts warm. Trailing wire extension,
  /// byte-invisible when empty.
  std::vector<orb::ObjectRef> ckpt_peers;

  bool operator==(const ExecuteRequest&) const = default;
};

struct ExecuteReply {
  ReservationId reservation;
  bool accepted = false;
  std::string reason;

  bool operator==(const ExecuteReply&) const = default;
};

enum class TaskOutcome : std::uint8_t {
  kCompleted = 0,
  kEvicted = 1,       // owner reclaimed the machine (NCC policy)
  kNodeFailed = 2,    // machine went down
  kCancelled = 3,     // GRM/user aborted
};

const char* task_outcome_name(TaskOutcome o);

struct TaskReport {
  TaskId task;
  NodeId node;
  TaskOutcome outcome = TaskOutcome::kCompleted;
  MInstr work_done = 0;  // progress at the time of the report
  std::string detail;

  bool operator==(const TaskReport&) const = default;
};

/// GRM -> LRM (scheduling economy): vacate `task` via checkpoint migration,
/// not kill. The LRM settles progress, saves a checkpoint through its
/// CkptAgent with `peers` as replica destinations (so the next host restores
/// warm from neighbors), then reports kEvicted; the GRM requeues and the
/// restore_state/ckpt_peers of the next Execute resume the task elsewhere.
/// Only sent when `ClusterConfig::sched` preemption is enabled.
struct PreemptRequest {
  TaskId task;
  std::vector<orb::ObjectRef> peers;

  bool operator==(const PreemptRequest&) const = default;
};

// ---------------------------------------------------------------------------
// Failover & snapshot protocol (see docs/snapshots.md)
// ---------------------------------------------------------------------------

/// Sent by an LRM to a GRM that just adopted it (standby promotion): the
/// set of tasks still running locally, so the new GRM can mark them running
/// instead of re-scheduling them from a stale snapshot. Paired with a
/// replay of the LRM's recent TaskReport journal for terminal outcomes that
/// may have been lost with the old primary.
struct TaskResync {
  NodeId node;
  orb::ObjectRef lrm;  // negotiation endpoint, same as NodeStatus::lrm
  std::vector<TaskId> running;

  bool operator==(const TaskResync&) const = default;
};

/// A control-plane snapshot image (snapshot::Envelope wire bytes) shipped
/// from the primary's SnapshotCoordinator to the standby's SnapshotStore.
/// The image is opaque at this layer; the store validates the envelope
/// (magic, version, checksum) before applying it.
struct SnapshotInstall {
  std::vector<std::uint8_t> image;

  bool operator==(const SnapshotInstall&) const = default;
};

struct SnapshotInstallReply {
  bool accepted = false;
  std::string reason;  // on rejection: why (sequencing gap, bad checksum...)

  bool operator==(const SnapshotInstallReply&) const = default;
};

// ---------------------------------------------------------------------------
// Checkpoint data plane (see docs/checkpoints.md)
//
// Checkpoints are content-addressed: an image is a *manifest* of SHA-256
// chunk references, and only chunks the destination store is missing travel
// the wire (offer/need negotiation), LZ-compressed. Chunks replicate to k
// peer stores so restart-after-crash pulls from surviving neighbors instead
// of the cluster manager.
// ---------------------------------------------------------------------------

/// SHA-256 of the *raw* (uncompressed) chunk bytes. Plain array here so the
/// wire layer does not depend on src/security.
using CkptHash = std::array<std::uint8_t, 32>;

struct CkptChunkRef {
  CkptHash hash{};
  std::uint32_t raw_size = 0;

  bool operator==(const CkptChunkRef&) const = default;
};

/// A checkpoint as a recipe: ordered chunk references reassembling the
/// image. Byte-identical chunks across versions share one stored copy.
struct CkptManifest {
  AppId app;
  std::int32_t rank = 0;
  std::int64_t version = 0;     // BSP: superstep index
  std::uint8_t chunker = 0;     // ckpt::Chunker the image was split with
  std::uint32_t chunk_size = 0; // fixed chunk size / CDC target average
  std::uint64_t image_bytes = 0;
  std::vector<CkptChunkRef> chunks;

  bool operator==(const CkptManifest&) const = default;
};

/// Sender -> store: "I want to install this manifest; which chunks do you
/// lack?" The reply's `missing` indexes into manifest.chunks.
struct CkptManifestOffer {
  CkptManifest manifest;

  bool operator==(const CkptManifestOffer&) const = default;
};

struct CkptChunkNeed {
  bool accepted = false;
  std::string reason;  // on rejection: version regression, malformed manifest
  std::vector<std::uint32_t> missing;

  bool operator==(const CkptChunkNeed&) const = default;
};

/// One chunk payload in transit: raw or LZ-compressed (ckpt::Encoding).
struct CkptChunkData {
  CkptHash hash{};
  std::uint8_t encoding = 0;
  std::uint32_t raw_size = 0;
  std::vector<std::uint8_t> payload;

  bool operator==(const CkptChunkData&) const = default;
};

struct CkptChunkPut {
  AppId app;  // for diagnostics; chunks are content-addressed, not per-app
  std::vector<CkptChunkData> chunks;

  bool operator==(const CkptChunkPut&) const = default;
};

struct CkptPutReply {
  std::int32_t stored = 0;
  std::int32_t rejected = 0;  // failed integrity verification

  bool operator==(const CkptPutReply&) const = default;
};

/// Commit a manifest at the destination store (all chunks must be present).
/// prune_below >= 0 additionally drops this rank's manifests with older
/// versions, releasing their chunk references.
struct CkptManifestInstall {
  CkptManifest manifest;
  std::int64_t prune_below = -1;

  bool operator==(const CkptManifestInstall&) const = default;
};

struct CkptInstallReply {
  bool accepted = false;
  std::string reason;

  bool operator==(const CkptInstallReply&) const = default;
};

/// Fetch chunks by hash (restart path). The reply carries the subset the
/// store actually has; absent hashes are simply omitted.
struct CkptChunkGet {
  std::vector<CkptHash> hashes;

  bool operator==(const CkptChunkGet&) const = default;
};

struct CkptChunkGetReply {
  std::vector<CkptChunkData> chunks;

  bool operator==(const CkptChunkGetReply&) const = default;
};

/// Ask a store for the newest manifest of an (app, rank) line — the warm
/// prefetch of the preemption-by-migration path: the new host learns what
/// image the victim checkpointed without the GRM shipping the manifest.
struct CkptManifestQuery {
  AppId app;
  std::int32_t rank = 0;

  bool operator==(const CkptManifestQuery&) const = default;
};

struct CkptManifestQueryReply {
  bool found = false;
  CkptManifest manifest;

  bool operator==(const CkptManifestQueryReply&) const = default;
};

/// Release recovery lines older than keep_from on a peer/agent store after a
/// newer line is complete everywhere (refcounted GC reclaims chunk bytes).
struct CkptPrune {
  AppId app;
  std::int64_t keep_from = 0;

  bool operator==(const CkptPrune&) const = default;
};

struct CkptDrop {
  AppId app;

  bool operator==(const CkptDrop&) const = default;
};

/// Coordinator -> rank agent: capture superstep `version` and persist it to
/// the repository store plus the listed peer stores; report to `notify`.
struct CkptSaveRequest {
  AppId app;
  std::int32_t rank = 0;
  std::int64_t version = 0;
  std::uint64_t epoch = 0;  // coordinator recovery epoch (stales old replies)
  std::int64_t image_bytes = 0;  // checkpoint image size (task descriptor)
  orb::ObjectRef repository;
  std::vector<orb::ObjectRef> peers;
  std::int64_t prune_below = -1;
  orb::ObjectRef notify;

  bool operator==(const CkptSaveRequest&) const = default;
};

struct CkptSaveDone {
  AppId app;
  std::int32_t rank = 0;
  std::int64_t version = 0;
  std::uint64_t epoch = 0;
  bool ok = false;
  std::int64_t image_bytes = 0;
  std::int32_t chunks_total = 0;
  std::int32_t chunks_shipped = 0;   // actually sent to repository + peers
  std::int32_t chunks_deduped = 0;   // already present at every destination
  std::int64_t bytes_shipped = 0;    // payload bytes that crossed the wire

  bool operator==(const CkptSaveDone&) const = default;
};

/// Coordinator -> rank agent (rollback): materialize `manifest` locally,
/// pulling missing chunks peers-first, repository as fallback.
struct CkptRestoreRequest {
  AppId app;
  std::int32_t rank = 0;
  std::int64_t version = 0;
  std::uint64_t epoch = 0;
  CkptManifest manifest;
  orb::ObjectRef repository;
  std::vector<orb::ObjectRef> peers;
  orb::ObjectRef notify;

  bool operator==(const CkptRestoreRequest&) const = default;
};

struct CkptRestoreDone {
  AppId app;
  std::int32_t rank = 0;
  std::int64_t version = 0;
  std::uint64_t epoch = 0;
  bool ok = false;
  std::int32_t chunks_local = 0;            // already in the local store
  std::int32_t chunks_from_peers = 0;
  std::int32_t chunks_from_repository = 0;
  std::int64_t bytes_pulled = 0;

  bool operator==(const CkptRestoreDone&) const = default;
};

// ---------------------------------------------------------------------------
// Usage Pattern Protocol (LUPA -> GUPA, GRM -> GUPA)
// ---------------------------------------------------------------------------

/// One behavioural category discovered by a node's LUPA: the centroid of a
/// cluster of observed day-vectors (48 half-hour mean CPU loads) plus its
/// empirical weight. Raw samples never leave the node — only these
/// centroids do (privacy, paper §3/§4).
struct UsageCategory {
  std::vector<double> centroid;  // 48 half-hour mean owner-CPU values
  double weight = 0.0;           // fraction of observed days in the category
  /// Mean weekday indicator per category helps map categories to the weekly
  /// cycle (e.g. "weekend" category).
  double weekday_fraction = 0.0;

  bool operator==(const UsageCategory&) const = default;
};

struct UsagePatternUpload {
  NodeId node;
  std::vector<UsageCategory> categories;
  std::int32_t days_observed = 0;

  bool operator==(const UsagePatternUpload&) const = default;
};

struct ForecastRequest {
  NodeId node;
  SimTime at;            // "now" from the asker's viewpoint
  SimDuration horizon;   // will the node stay idle this long?

  bool operator==(const ForecastRequest&) const = default;
};

struct ForecastReply {
  NodeId node;
  bool known = false;          // false: GUPA has no pattern for this node
  double p_idle_through = 0.0; // P(owner stays away for the whole horizon)
  SimDuration expected_idle_remaining = 0;

  bool operator==(const ForecastReply&) const = default;
};

}  // namespace integrade::protocol

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------
namespace integrade::cdr {

template <> struct Codec<protocol::NodeStatus> {
  static void encode(Writer& w, const protocol::NodeStatus& v);
  static protocol::NodeStatus decode(Reader& r);
};
template <> struct Codec<protocol::NodeStatusBatch> {
  static void encode(Writer& w, const protocol::NodeStatusBatch& v);
  static protocol::NodeStatusBatch decode(Reader& r);
};
template <> struct Codec<protocol::TaskDescriptor> {
  static void encode(Writer& w, const protocol::TaskDescriptor& v);
  static protocol::TaskDescriptor decode(Reader& r);
};
template <> struct Codec<protocol::ReservationRequest> {
  static void encode(Writer& w, const protocol::ReservationRequest& v);
  static protocol::ReservationRequest decode(Reader& r);
};
template <> struct Codec<protocol::ReservationReply> {
  static void encode(Writer& w, const protocol::ReservationReply& v);
  static protocol::ReservationReply decode(Reader& r);
};
template <> struct Codec<protocol::ExecuteRequest> {
  static void encode(Writer& w, const protocol::ExecuteRequest& v);
  static protocol::ExecuteRequest decode(Reader& r);
};
template <> struct Codec<protocol::ExecuteReply> {
  static void encode(Writer& w, const protocol::ExecuteReply& v);
  static protocol::ExecuteReply decode(Reader& r);
};
template <> struct Codec<protocol::TaskReport> {
  static void encode(Writer& w, const protocol::TaskReport& v);
  static protocol::TaskReport decode(Reader& r);
};
template <> struct Codec<protocol::PreemptRequest> {
  static void encode(Writer& w, const protocol::PreemptRequest& v);
  static protocol::PreemptRequest decode(Reader& r);
};
template <> struct Codec<protocol::CkptManifestQuery> {
  static void encode(Writer& w, const protocol::CkptManifestQuery& v);
  static protocol::CkptManifestQuery decode(Reader& r);
};
template <> struct Codec<protocol::CkptManifestQueryReply> {
  static void encode(Writer& w, const protocol::CkptManifestQueryReply& v);
  static protocol::CkptManifestQueryReply decode(Reader& r);
};
template <> struct Codec<protocol::UsageCategory> {
  static void encode(Writer& w, const protocol::UsageCategory& v);
  static protocol::UsageCategory decode(Reader& r);
};
template <> struct Codec<protocol::UsagePatternUpload> {
  static void encode(Writer& w, const protocol::UsagePatternUpload& v);
  static protocol::UsagePatternUpload decode(Reader& r);
};
template <> struct Codec<protocol::ForecastRequest> {
  static void encode(Writer& w, const protocol::ForecastRequest& v);
  static protocol::ForecastRequest decode(Reader& r);
};
template <> struct Codec<protocol::ForecastReply> {
  static void encode(Writer& w, const protocol::ForecastReply& v);
  static protocol::ForecastReply decode(Reader& r);
};
template <> struct Codec<protocol::ResourceRequirements> {
  static void encode(Writer& w, const protocol::ResourceRequirements& v);
  static protocol::ResourceRequirements decode(Reader& r);
};
template <> struct Codec<protocol::TopologyGroup> {
  static void encode(Writer& w, const protocol::TopologyGroup& v);
  static protocol::TopologyGroup decode(Reader& r);
};
template <> struct Codec<protocol::TopologySpec> {
  static void encode(Writer& w, const protocol::TopologySpec& v);
  static protocol::TopologySpec decode(Reader& r);
};
template <> struct Codec<protocol::ApplicationSpec> {
  static void encode(Writer& w, const protocol::ApplicationSpec& v);
  static protocol::ApplicationSpec decode(Reader& r);
  /// Pre-economy field set only, no trailing bid extension. Nesting
  /// contexts (RemoteSubmit, GRM snapshots) use these and append their own
  /// extension, so the outer frame stays unambiguous to old decoders.
  static void encode_base(Writer& w, const protocol::ApplicationSpec& v);
  static protocol::ApplicationSpec decode_base(Reader& r);
};
template <> struct Codec<protocol::SubmitReply> {
  static void encode(Writer& w, const protocol::SubmitReply& v);
  static protocol::SubmitReply decode(Reader& r);
};
template <> struct Codec<protocol::AppEvent> {
  static void encode(Writer& w, const protocol::AppEvent& v);
  static protocol::AppEvent decode(Reader& r);
};
template <> struct Codec<protocol::BspComputeRequest> {
  static void encode(Writer& w, const protocol::BspComputeRequest& v);
  static protocol::BspComputeRequest decode(Reader& r);
};
template <> struct Codec<protocol::BspChunkDone> {
  static void encode(Writer& w, const protocol::BspChunkDone& v);
  static protocol::BspChunkDone decode(Reader& r);
};
template <> struct Codec<protocol::WorkReply> {
  static void encode(Writer& w, const protocol::WorkReply& v) {
    w.write_bool(v.has_work);
    Codec<protocol::TaskDescriptor>::encode(w, v.task);
  }
  static protocol::WorkReply decode(Reader& r) {
    protocol::WorkReply v;
    v.has_work = r.read_bool();
    v.task = Codec<protocol::TaskDescriptor>::decode(r);
    return v;
  }
};
template <> struct Codec<protocol::ClusterSummary> {
  static void encode(Writer& w, const protocol::ClusterSummary& v);
  static protocol::ClusterSummary decode(Reader& r);
};
template <> struct Codec<protocol::RemoteSubmit> {
  static void encode(Writer& w, const protocol::RemoteSubmit& v);
  static protocol::RemoteSubmit decode(Reader& r);
};
template <> struct Codec<protocol::RemoteAdopted> {
  static void encode(Writer& w, const protocol::RemoteAdopted& v);
  static protocol::RemoteAdopted decode(Reader& r);
};
template <> struct Codec<protocol::CancelApp> {
  static void encode(Writer& w, const protocol::CancelApp& v) {
    w.write_id(v.app);
  }
  static protocol::CancelApp decode(Reader& r) {
    protocol::CancelApp v;
    v.app = r.read_id<AppTag>();
    return v;
  }
};
template <> struct Codec<protocol::TaskResync> {
  static void encode(Writer& w, const protocol::TaskResync& v);
  static protocol::TaskResync decode(Reader& r);
};
template <> struct Codec<protocol::SnapshotInstall> {
  static void encode(Writer& w, const protocol::SnapshotInstall& v);
  static protocol::SnapshotInstall decode(Reader& r);
};
template <> struct Codec<protocol::SnapshotInstallReply> {
  static void encode(Writer& w, const protocol::SnapshotInstallReply& v);
  static protocol::SnapshotInstallReply decode(Reader& r);
};
template <> struct Codec<protocol::CkptChunkRef> {
  static void encode(Writer& w, const protocol::CkptChunkRef& v);
  static protocol::CkptChunkRef decode(Reader& r);
};
template <> struct Codec<protocol::CkptManifest> {
  static void encode(Writer& w, const protocol::CkptManifest& v);
  static protocol::CkptManifest decode(Reader& r);
};
template <> struct Codec<protocol::CkptManifestOffer> {
  static void encode(Writer& w, const protocol::CkptManifestOffer& v);
  static protocol::CkptManifestOffer decode(Reader& r);
};
template <> struct Codec<protocol::CkptChunkNeed> {
  static void encode(Writer& w, const protocol::CkptChunkNeed& v);
  static protocol::CkptChunkNeed decode(Reader& r);
};
template <> struct Codec<protocol::CkptChunkData> {
  static void encode(Writer& w, const protocol::CkptChunkData& v);
  static protocol::CkptChunkData decode(Reader& r);
};
template <> struct Codec<protocol::CkptChunkPut> {
  static void encode(Writer& w, const protocol::CkptChunkPut& v);
  static protocol::CkptChunkPut decode(Reader& r);
};
template <> struct Codec<protocol::CkptPutReply> {
  static void encode(Writer& w, const protocol::CkptPutReply& v);
  static protocol::CkptPutReply decode(Reader& r);
};
template <> struct Codec<protocol::CkptManifestInstall> {
  static void encode(Writer& w, const protocol::CkptManifestInstall& v);
  static protocol::CkptManifestInstall decode(Reader& r);
};
template <> struct Codec<protocol::CkptInstallReply> {
  static void encode(Writer& w, const protocol::CkptInstallReply& v);
  static protocol::CkptInstallReply decode(Reader& r);
};
template <> struct Codec<protocol::CkptChunkGet> {
  static void encode(Writer& w, const protocol::CkptChunkGet& v);
  static protocol::CkptChunkGet decode(Reader& r);
};
template <> struct Codec<protocol::CkptChunkGetReply> {
  static void encode(Writer& w, const protocol::CkptChunkGetReply& v);
  static protocol::CkptChunkGetReply decode(Reader& r);
};
template <> struct Codec<protocol::CkptPrune> {
  static void encode(Writer& w, const protocol::CkptPrune& v) {
    w.write_id(v.app);
    w.write_i64(v.keep_from);
  }
  static protocol::CkptPrune decode(Reader& r) {
    protocol::CkptPrune v;
    v.app = r.read_id<AppTag>();
    v.keep_from = r.read_i64();
    return v;
  }
};
template <> struct Codec<protocol::CkptDrop> {
  static void encode(Writer& w, const protocol::CkptDrop& v) {
    w.write_id(v.app);
  }
  static protocol::CkptDrop decode(Reader& r) {
    protocol::CkptDrop v;
    v.app = r.read_id<AppTag>();
    return v;
  }
};
template <> struct Codec<protocol::CkptSaveRequest> {
  static void encode(Writer& w, const protocol::CkptSaveRequest& v);
  static protocol::CkptSaveRequest decode(Reader& r);
};
template <> struct Codec<protocol::CkptSaveDone> {
  static void encode(Writer& w, const protocol::CkptSaveDone& v);
  static protocol::CkptSaveDone decode(Reader& r);
};
template <> struct Codec<protocol::CkptRestoreRequest> {
  static void encode(Writer& w, const protocol::CkptRestoreRequest& v);
  static protocol::CkptRestoreRequest decode(Reader& r);
};
template <> struct Codec<protocol::CkptRestoreDone> {
  static void encode(Writer& w, const protocol::CkptRestoreDone& v);
  static protocol::CkptRestoreDone decode(Reader& r);
};
template <> struct Codec<protocol::CancelTask> {
  static void encode(Writer& w, const protocol::CancelTask& v) {
    w.write_id(v.task);
  }
  static protocol::CancelTask decode(Reader& r) {
    protocol::CancelTask v;
    v.task = r.read_id<TaskTag>();
    return v;
  }
};

}  // namespace integrade::cdr
