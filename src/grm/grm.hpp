// GRM — Global Resource Manager (paper §4).
//
// One per cluster, running on the Cluster Manager node. Receives periodic
// NodeStatus updates from every LRM and stores them as service offers in a
// Trading service ("the GRM uses the Trader to store the information it
// receives from the LRMs", §5). Application submissions are matched against
// those offers with the Trader constraint language; the resulting candidate
// list is only a *hint* — the GRM then negotiates directly with each LRM
// (Reserve -> Execute), moving to the next candidate on refusal, exactly as
// §4 describes.
//
// Scheduling refinements the paper calls for:
//   * usage-pattern forecasts from the GUPA re-rank candidates by the
//     probability they stay idle long enough for the task;
//   * virtual-topology requests pin task groups to network segments whose
//     measured bandwidth meets the request;
//   * tasks evicted mid-run are re-queued and resume from their latest
//     checkpoint;
//   * when the local cluster has no matching resources, the task walks the
//     cluster hierarchy (RemoteSubmit) until some cluster adopts it.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "ckpt/repository.hpp"
#include "common/backoff.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "lupa/gupa.hpp"
#include "orb/orb.hpp"
#include "protocol/messages.hpp"
#include "protocol/properties.hpp"
#include "sched/sched.hpp"
#include "services/trader.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace integrade::grm {

struct GrmOptions {
  /// Offers not refreshed within this window are withdrawn (dead LRM).
  SimDuration offer_ttl = 150 * kSecond;
  SimDuration stale_sweep_period = 30 * kSecond;
  /// Hold the GRM asks LRMs to keep on granted reservations.
  SimDuration reservation_hold = 30 * kSecond;
  /// Candidates tried per negotiation wave before backing off.
  int max_candidates_per_wave = 8;
  /// Retry schedule for fruitless waves. The default (multiplier 1, no
  /// jitter) is the historical fixed 20 s delay; chaos configurations turn
  /// on capped exponential growth + decorrelated jitter so post-partition
  /// retry storms spread out instead of re-synchronising.
  BackoffPolicy backoff;
  /// After this many fruitless waves, try the cluster hierarchy.
  int forward_after_waves = 2;
  /// Consult the GUPA when ranking candidates (the E5 ablation switch).
  bool use_forecast = true;
  /// Trader preference applied when the user supplies none.
  std::string default_preference = "max exportable_mips";
  SimDuration call_timeout = 5 * kSecond;
  /// CPU fraction requested per task reservation.
  double cpu_request = 1.0;
  /// Summary push cadence toward the parent cluster.
  SimDuration summary_period = 60 * kSecond;
  /// Extra delay before the first scheduler pass after a batch arrives with
  /// a higher GRM epoch (standby adoption): gives TaskResync frames and
  /// journal replays time to land before the new GRM re-places tasks the
  /// old primary already placed. 0 (default) = no grace, byte-identical to
  /// the historical behaviour.
  SimDuration adoption_grace = 0;
};

enum class TaskState {
  kPending,      // waiting for a negotiation wave
  kNegotiating,  // wave in flight
  kRunning,      // placed on a node
  kRemote,       // walking the hierarchy / adopted by another cluster
  kCompleted,
  kFailed,
};

class Grm {
 public:
  Grm(sim::Engine& engine, orb::Orb& orb, ClusterId cluster, Rng rng,
      GrmOptions options = {});
  ~Grm();
  Grm(const Grm&) = delete;
  Grm& operator=(const Grm&) = delete;

  /// `gupa` and `checkpoints` are co-located services on the Cluster
  /// Manager node (in-process access, per the paper's architecture);
  /// `network` enables topology-aware placement and bulk-transfer billing.
  void start(lupa::Gupa* gupa, ckpt::CheckpointRepository* checkpoints,
             sim::Network* network);
  void stop();

  [[nodiscard]] const orb::ObjectRef& ref() const { return self_ref_; }
  [[nodiscard]] ClusterId cluster() const { return cluster_; }
  [[nodiscard]] services::Trader& trader() { return trader_; }
  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }

  // Hierarchy wiring (refs of other clusters' GRMs).
  void set_parent(const orb::ObjectRef& parent) { parent_ = parent; }
  void add_child(const orb::ObjectRef& child) { children_.push_back(child); }

  /// Scheduling economy (tenants, quotas, fair-share, preemption). Call
  /// before any submission; disabled (the default) keeps the historical
  /// FIFO dispatch order byte-for-byte.
  void set_sched(const sched::SchedOptions& options);
  /// Checkpoint agents per provider node: the preemption path picks peers
  /// from this list so a victim's final image lands near its successor.
  void set_ckpt_agents(std::vector<std::pair<NodeId, orb::ObjectRef>> agents) {
    ckpt_agents_ = std::move(agents);
    std::sort(ckpt_agents_.begin(), ckpt_agents_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  // ---- protocol entry points (servant ops; public for tests) ----
  void handle_update_status(const protocol::NodeStatus& status);
  void handle_update_status_batch(const protocol::NodeStatusBatch& batch);
  protocol::SubmitReply handle_submit(const protocol::ApplicationSpec& spec);
  void handle_report(const protocol::TaskReport& report);
  void handle_remote_submit(const protocol::RemoteSubmit& request);
  void handle_remote_adopted(const protocol::RemoteAdopted& ack);
  void handle_cluster_summary(const protocol::ClusterSummary& summary);
  void handle_cancel_app(AppId app);
  /// An adopted LRM declares which tasks are still running on it, so a GRM
  /// restored from a snapshot marks them running instead of re-placing them.
  void handle_task_resync(const protocol::TaskResync& resync);

  // ---- BSP coordinator integration (core library hooks in) ----
  struct Placement {
    NodeId node;
    orb::ObjectRef lrm;
  };
  using BspReadyHandler = std::function<void(AppId)>;
  using BspRankPlacedHandler =
      std::function<void(AppId, std::int32_t rank, const Placement&)>;
  using BspRankLostHandler = std::function<void(AppId, std::int32_t rank)>;
  using BspCancelledHandler = std::function<void(AppId)>;
  void set_bsp_handlers(BspReadyHandler ready, BspRankPlacedHandler placed,
                        BspRankLostHandler lost,
                        BspCancelledHandler cancelled = {});
  [[nodiscard]] const Placement* placement_of(TaskId task) const;
  /// Coordinator declares the whole BSP app finished (cancels residents).
  void complete_bsp_app(AppId app);

  // ---- introspection for benches/tests ----
  [[nodiscard]] std::size_t known_nodes() const { return nodes_.size(); }
  [[nodiscard]] TaskState task_state(TaskId task) const;
  [[nodiscard]] bool app_known(AppId app) const { return apps_.contains(app); }
  [[nodiscard]] const protocol::ApplicationSpec* app_spec(AppId app) const {
    auto it = apps_.find(app);
    return it == apps_.end() ? nullptr : &it->second.spec;
  }
  [[nodiscard]] int pending_tasks() const;
  [[nodiscard]] int running_tasks() const;
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  /// Read-only view of the tenant running-count registry (per-tenant slot
  /// occupancy — what fair-share benchmarks sample).
  [[nodiscard]] const sched::TenantRegistry& tenant_registry() const {
    return tenant_registry_;
  }
  [[nodiscard]] std::optional<protocol::NodeStatus> node_view(NodeId node) const;

  // ---- control-plane snapshots (see docs/snapshots.md) ----
  /// Highest snapshot format version for the "grm" section. Version 2
  /// appends the scheduling-economy state (per-app bids, per-task tenant
  /// and deadline, fair-queue passes); version 1 is the pre-economy layout.
  static constexpr std::uint32_t kSnapshotVersion = 2;
  /// Version save() actually writes: 2 with the economy enabled, else 1 —
  /// a sched-disabled GRM's snapshot stream stays byte-identical to the
  /// pre-economy format.
  [[nodiscard]] std::uint32_t snapshot_version() const {
    return sched_.enabled ? 2 : 1;
  }
  /// Serialize scheduler state: node records, apps, tasks, the pending
  /// queue, in-flight counts, child summaries, reservation counter, epoch
  /// guards, and both RNG streams. Engine-coupled transients (armed timers,
  /// active negotiation waves, trace spans) are intentionally excluded; a
  /// loaded GRM re-derives them. The Trader is its own snapshot section.
  void save(cdr::Writer& w) const;
  /// Replace scheduler state from a snapshot section. Decode-into-scratch:
  /// on any error the GRM is untouched. Requires the Trader section to have
  /// been loaded first (node records must reference live offers). The loaded
  /// state is dormant until recover_in_flight().
  Status load(std::uint32_t version, cdr::Reader& r);
  /// After a failover load: tasks the snapshot froze mid-negotiation have
  /// no surviving wave callbacks on this GRM — return them to the pending
  /// queue (and clear in-flight counts) so the next scheduler pass retries
  /// them, and kRemote adoption timeouts are re-armed. Separate from load():
  /// a warm standby installs snapshots while the primary is alive and must
  /// stay dormant (no timers, no kicks) until promoted — the first status
  /// frame or task resync after adoption calls this automatically. Also
  /// keeps save→load→save byte-identical.
  void recover_in_flight();

 private:
  struct NodeRecord {
    services::OfferId offer;
    protocol::NodeStatus status;
    SimTime last_update = 0;
  };

  struct TaskRecord {
    protocol::TaskDescriptor desc;
    AppId app;
    TaskState state = TaskState::kPending;
    Placement placement;
    int waves = 0;      // fruitless negotiation waves so far
    int evictions = 0;
    SimDuration backoff = 0;  // last retry delay; 0 until the first failure
    SimTime eligible_at = 0;
    /// Scheduling economy (sched enabled only; defaults otherwise).
    std::string tenant;
    SimTime deadline = 0;  // absolute bid deadline; 0 = none
    /// Peers holding the task's latest preemption checkpoint: forwarded on
    /// the next Execute so the successor node's restore starts warm.
    std::vector<orb::ObjectRef> ckpt_peers;
    std::int32_t topology_segment = -1;  // pinned segment, -1 = anywhere
    sim::EventHandle remote_timeout;
    /// Absolute deadline of remote_timeout (kRemote tasks only): event
    /// handles cannot be serialized, so snapshots persist the deadline and
    /// load() re-arms the timer at the same instant.
    SimTime remote_deadline = 0;
    /// Long-lived "grm.task" span: opened at submission, closed at final
    /// completion, so its duration is the submission→completion latency the
    /// E13 bench gates on. Inactive when tracing is off. All negotiation
    /// spans for the task parent on its context.
    obs::Tracer::ActiveSpan span;
  };

  struct AppRecord {
    protocol::ApplicationSpec spec;
    bool adopted_remote = false;  // this GRM hosts it for another cluster
    orb::ObjectRef origin;        // origin GRM (adopted fragments only)
    int outstanding = 0;          // tasks not yet completed
    int running = 0;
    bool bsp_ready_fired = false;
    bool failed = false;
  };

  // Negotiation wave state (heap-held; callbacks keep it alive).
  struct Wave;

  void on_update(const protocol::NodeStatus& status);
  void sweep_stale_offers();
  void on_node_dead(NodeId node, const NodeRecord& record);
  void kick_scheduler(SimDuration delay = 0);
  void scheduler_pass();
  void begin_wave(TaskRecord& task);
  void continue_wave(const std::shared_ptr<Wave>& wave);
  void wave_failed(const std::shared_ptr<Wave>& wave);
  void task_placed(TaskId task, const Placement& placement);
  /// Preemption-by-migration: checkpoint an over-share tenant's running
  /// task off its node so `requester` can take the slot. Returns true when
  /// a victim was told to checkpoint out.
  bool maybe_preempt(const TaskRecord& requester);
  void credit_node_capacity(NodeId node);
  [[nodiscard]] std::vector<orb::ObjectRef> pick_ckpt_peers(
      NodeId exclude) const;
  void note_task_started(const TaskRecord& task);
  void note_task_stopped(const TaskRecord& task);
  void requeue(TaskRecord& task, SimDuration delay);
  /// Requeue after a fruitless wave, advancing the task's backoff delay.
  void requeue_backoff(TaskRecord& task);
  void forward_remote(TaskRecord& task);
  /// Arm (or re-arm) a kRemote task's adoption timeout at its deadline.
  void arm_remote_timeout(TaskRecord& task);
  void notify(const AppRecord& app, protocol::AppEventKind kind, TaskId task,
              NodeId node, const std::string& detail);
  void maybe_app_done(AppId app_id);
  void push_summary();
  [[nodiscard]] protocol::ClusterSummary build_summary() const;

  [[nodiscard]] std::vector<const services::ServiceOffer*> candidates_for(
      const TaskRecord& task);
  [[nodiscard]] std::string build_constraint(const TaskRecord& task) const;
  [[nodiscard]] bool plan_topology(AppRecord& app,
                                   std::vector<std::int32_t>& rank_segment);
  [[nodiscard]] std::vector<std::uint8_t> restore_state_for(
      const TaskRecord& task) const;

  sim::Engine& engine_;
  orb::Orb& orb_;
  ClusterId cluster_;
  Rng rng_;
  /// Dedicated stream for backoff jitter: it must not share (or fork from)
  /// rng_, or enabling jitter would perturb the trader's tie-break draws
  /// and break reproducibility against non-jittered runs.
  Rng backoff_rng_;
  GrmOptions options_;

  orb::ObjectRef self_ref_;
  orb::ObjectRef parent_;
  std::vector<orb::ObjectRef> children_;
  lupa::Gupa* gupa_ = nullptr;
  ckpt::CheckpointRepository* checkpoints_ = nullptr;
  sim::Network* network_ = nullptr;

  services::Trader trader_;
  /// Hash-keyed: the heartbeat path hits this once per update and nothing
  /// depends on ordered iteration (sweeps, summaries, and capacity counts
  /// are all order-insensitive).
  std::unordered_map<NodeId, NodeRecord> nodes_;
  std::map<AppId, AppRecord> apps_;
  std::map<TaskId, TaskRecord> tasks_;
  /// Ready queue. Disabled economy: strict FIFO, byte-identical dispatch to
  /// the plain deque it replaced. Enabled: weighted stride across tenants,
  /// EDF within each. Membership is deduplicated in both modes.
  sched::FairQueue queue_;
  sched::SchedOptions sched_;
  sched::TenantRegistry tenant_registry_;
  /// Tasks with a preempt request in flight (never re-victimised).
  std::set<TaskId> preempting_;
  std::vector<std::pair<NodeId, orb::ObjectRef>> ckpt_agents_;
  std::map<ClusterId, protocol::ClusterSummary> child_summaries_;
  /// Highest NodeStatusBatch epoch seen per segment: batches below it are
  /// stale traffic from a demoted primary's queues and are dropped. Epoch 0
  /// (unversioned senders) is never tracked or dropped.
  std::map<std::int32_t, std::uint64_t> segment_epochs_;
  /// True between load() and recover_in_flight(): snapshot state installed
  /// but not yet activated (standby awaiting promotion).
  bool restored_dormant_ = false;

  BspReadyHandler bsp_ready_;
  BspRankPlacedHandler bsp_placed_;
  BspRankLostHandler bsp_lost_;
  BspCancelledHandler bsp_cancelled_;

  /// Reserve requests currently in flight per node: concurrent waves use
  /// this to spread across candidates instead of stampeding the best one.
  std::unordered_map<NodeId, int> inflight_;

  sim::PeriodicTimer sweep_timer_;
  sim::PeriodicTimer summary_timer_;
  bool pass_scheduled_ = false;
  bool started_ = false;
  std::uint64_t next_reservation_ = 1;

  MetricRegistry metrics_;
};

}  // namespace integrade::grm
