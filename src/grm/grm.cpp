#include "grm/grm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>

#include "common/log.hpp"
#include "protocol/trace_names.hpp"
#include "snapshot/state_codecs.hpp"

namespace integrade::grm {

using protocol::AppEventKind;
using protocol::AppKind;
using protocol::TaskOutcome;

namespace {

constexpr const char* kOpUpdateStatus = "update_status";
constexpr const char* kOpUpdateStatusBatch = "update_status_batch";
constexpr const char* kOpSubmit = "submit";
constexpr const char* kOpReport = "report";
constexpr const char* kOpRemoteSubmit = "remote_submit";
constexpr const char* kOpRemoteAdopted = "remote_adopted";
constexpr const char* kOpClusterSummary = "cluster_summary";

class GrmServant final : public orb::SkeletonBase {
 public:
  explicit GrmServant(Grm& grm) {
    register_op<protocol::NodeStatus, cdr::Empty>(
        kOpUpdateStatus,
        [&grm](const protocol::NodeStatus& status) -> Result<cdr::Empty> {
          grm.handle_update_status(status);
          return cdr::Empty{};
        });
    register_op<protocol::NodeStatusBatch, cdr::Empty>(
        kOpUpdateStatusBatch,
        [&grm](const protocol::NodeStatusBatch& batch) -> Result<cdr::Empty> {
          grm.handle_update_status_batch(batch);
          return cdr::Empty{};
        });
    register_op<protocol::ApplicationSpec, protocol::SubmitReply>(
        kOpSubmit, [&grm](const protocol::ApplicationSpec& spec)
                       -> Result<protocol::SubmitReply> {
          return grm.handle_submit(spec);
        });
    register_op<protocol::TaskReport, cdr::Empty>(
        kOpReport, [&grm](const protocol::TaskReport& report) -> Result<cdr::Empty> {
          grm.handle_report(report);
          return cdr::Empty{};
        });
    register_op<protocol::RemoteSubmit, cdr::Empty>(
        kOpRemoteSubmit,
        [&grm](const protocol::RemoteSubmit& req) -> Result<cdr::Empty> {
          grm.handle_remote_submit(req);
          return cdr::Empty{};
        });
    register_op<protocol::RemoteAdopted, cdr::Empty>(
        kOpRemoteAdopted,
        [&grm](const protocol::RemoteAdopted& ack) -> Result<cdr::Empty> {
          grm.handle_remote_adopted(ack);
          return cdr::Empty{};
        });
    register_op<protocol::CancelApp, cdr::Empty>(
        "cancel_app",
        [&grm](const protocol::CancelApp& req) -> Result<cdr::Empty> {
          grm.handle_cancel_app(req.app);
          return cdr::Empty{};
        });
    register_op<protocol::ClusterSummary, cdr::Empty>(
        kOpClusterSummary,
        [&grm](const protocol::ClusterSummary& summary) -> Result<cdr::Empty> {
          grm.handle_cluster_summary(summary);
          return cdr::Empty{};
        });
    register_op<protocol::TaskResync, cdr::Empty>(
        "task_resync",
        [&grm](const protocol::TaskResync& resync) -> Result<cdr::Empty> {
          grm.handle_task_resync(resync);
          return cdr::Empty{};
        });
  }

  [[nodiscard]] const char* type_id() const override {
    return "IDL:integrade/Grm:1.0";
  }
};

}  // namespace

/// One negotiation wave for one task: a snapshot of ranked candidates that
/// the Reserve/Execute callbacks walk through. Heap-held and shared into
/// the callbacks so a wave survives GRM map mutations.
struct Grm::Wave {
  TaskId task;
  std::vector<Placement> candidates;
  std::size_t index = 0;
};

Grm::Grm(sim::Engine& engine, orb::Orb& orb, ClusterId cluster, Rng rng,
         GrmOptions options)
    : engine_(engine),
      orb_(orb),
      cluster_(cluster),
      rng_(rng),
      backoff_rng_(0x6a09e667f3bcc908ULL ^ cluster.value),
      options_(options) {}

Grm::~Grm() { stop(); }

void Grm::start(lupa::Gupa* gupa, ckpt::CheckpointRepository* checkpoints,
                sim::Network* network) {
  assert(!started_);
  started_ = true;
  gupa_ = gupa;
  checkpoints_ = checkpoints;
  network_ = network;
  self_ref_ = orb_.activate(std::make_shared<GrmServant>(*this));
  sweep_timer_.start(engine_, options_.stale_sweep_period,
                     [this] { sweep_stale_offers(); });
  summary_timer_.start(engine_, options_.summary_period, [this] { push_summary(); });
}

void Grm::set_sched(const sched::SchedOptions& options) {
  sched_ = options;
  queue_.configure(sched_);
  tenant_registry_.configure(sched_);
}

void Grm::note_task_started(const TaskRecord& task) {
  if (sched_.enabled) tenant_registry_.on_task_start(task.tenant);
}

void Grm::note_task_stopped(const TaskRecord& task) {
  if (sched_.enabled) tenant_registry_.on_task_stop(task.tenant);
}

void Grm::stop() {
  if (!started_) return;
  started_ = false;
  sweep_timer_.stop();
  summary_timer_.stop();
  orb_.deactivate(self_ref_.key);
}

// ---------------------------------------------------------------------------
// Information Update Protocol (consumer side)
// ---------------------------------------------------------------------------

void Grm::handle_update_status(const protocol::NodeStatus& status) {
  metrics_.counter("status_updates_received").add();
  on_update(status);
  // Fresh capacity may unblock queued tasks.
  if (status.shareable) kick_scheduler();
}

void Grm::handle_update_status_batch(const protocol::NodeStatusBatch& batch) {
  // Epoch guard: after a failover the demoted primary's network queues can
  // still drain batches stamped with the old epoch. Applying them would
  // resurrect offers the new GRM just learned are stale. Epoch 0 marks an
  // unversioned sender (tests, legacy paths) and is never dropped.
  bool epoch_advanced = false;
  if (batch.epoch != 0) {
    std::uint64_t& seen = segment_epochs_[batch.segment];
    if (batch.epoch < seen) {
      metrics_.counter("stale_epoch_batches_dropped").add();
      return;
    }
    epoch_advanced = batch.epoch > seen;
    seen = batch.epoch;
  }
  // Promotion: the first frame a snapshot-restored standby receives means
  // the segment adopted it — wake the dormant image before applying.
  if (restored_dormant_) recover_in_flight();
  metrics_.counter("status_batches_received").add();
  metrics_.counter("status_updates_received")
      .add(static_cast<std::int64_t>(batch.updates.size()));
  // One dispatch applies the whole segment: each member refreshes its
  // Trader offer in place, then the scheduler is kicked once — not once per
  // node — if any member can take work.
  bool any_shareable = false;
  for (const protocol::NodeStatus& status : batch.updates) {
    on_update(status);
    any_shareable = any_shareable || status.shareable;
  }
  if (any_shareable) {
    kick_scheduler(epoch_advanced ? options_.adoption_grace : 0);
  }
}

void Grm::handle_task_resync(const protocol::TaskResync& resync) {
  if (restored_dormant_) recover_in_flight();  // resync implies adoption
  metrics_.counter("task_resyncs_received").add();
  for (const TaskId id : resync.running) {
    auto it = tasks_.find(id);
    if (it == tasks_.end()) continue;
    TaskRecord& task = it->second;
    if (task.state == TaskState::kCompleted ||
        task.state == TaskState::kFailed) {
      continue;  // terminal outcome already known; the LRM's copy is doomed
    }
    if (task.state == TaskState::kRunning &&
        task.placement.node == resync.node) {
      continue;  // nothing to learn
    }
    const bool was_running = task.state == TaskState::kRunning;
    task.remote_timeout.cancel();
    task.remote_deadline = 0;
    task.state = TaskState::kRunning;
    task.placement = Placement{resync.node, resync.lrm};
    task.waves = 0;
    task.backoff = 0;
    metrics_.counter("tasks_resynced").add();
    if (!was_running) {
      note_task_started(task);
      auto app_it = apps_.find(task.app);
      if (app_it != apps_.end()) ++app_it->second.running;
    }
  }
}

void Grm::on_update(const protocol::NodeStatus& status) {
  auto it = nodes_.find(status.node);
  if (it == nodes_.end()) {
    NodeRecord record;
    record.offer = trader_.export_offer(protocol::kNodeServiceType, status.lrm,
                                        protocol::to_properties(status),
                                        engine_.now());
    record.status = status;
    record.last_update = engine_.now();
    nodes_.emplace(status.node, std::move(record));
    metrics_.counter("nodes_registered").add();
    return;
  }
  it->second.status = status;
  it->second.last_update = engine_.now();
  // Refresh the existing offer in place: every LRM heartbeat lands here, so
  // rebuilding the property set from scratch each period is pure churn.
  (void)trader_.refresh(
      it->second.offer,
      [&status](services::PropertySet& props) {
        protocol::update_properties(status, props);
      },
      engine_.now());
}

void Grm::sweep_stale_offers() {
  const SimTime cutoff = engine_.now() - options_.offer_ttl;
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    if (it->second.last_update < cutoff) {
      (void)trader_.withdraw(it->second.offer);
      metrics_.counter("offers_expired").add();
      const NodeId dead = it->first;
      NodeRecord record = std::move(it->second);
      it = nodes_.erase(it);
      on_node_dead(dead, record);
    } else {
      ++it;
    }
  }
}

void Grm::on_node_dead(NodeId node, const NodeRecord& record) {
  // The node may come back (sweeps are a liveness heuristic), but from the
  // scheduler's view it is gone: forget its negotiation load and reclaim
  // every task it was running. Leaving the inflight_ count behind would
  // make later waves under-select the node forever after it re-registers.
  inflight_.erase(node);

  for (auto& [task_id, task] : tasks_) {
    if (task.state != TaskState::kRunning || task.placement.node != node) {
      continue;
    }
    // Best-effort cancel in case the node is alive after all: its copy of
    // the task (and the reservation holding it) should die, not race the
    // replacement we are about to place.
    if (record.status.lrm.valid()) {
      orb::oneway(orb_, record.status.lrm, "cancel", protocol::CancelTask{task_id});
    }
    ++task.evictions;
    note_task_stopped(task);
    preempting_.erase(task_id);
    metrics_.counter("tasks_node_failed").add();
    auto app_it = apps_.find(task.app);
    if (app_it != apps_.end()) {
      AppRecord& app = app_it->second;
      --app.running;
      notify(app, AppEventKind::kTaskEvicted, task_id, node,
             "node declared dead by stale sweep");
      if (app.spec.kind == AppKind::kBsp && bsp_lost_) {
        bsp_lost_(app.spec.id, task.desc.bsp_rank);
      }
      requeue(task, 1 * kSecond);
      notify(app, AppEventKind::kTaskRescheduled, task_id, NodeId(), "");
    } else {
      requeue(task, 1 * kSecond);
    }
  }
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

protocol::SubmitReply Grm::handle_submit(const protocol::ApplicationSpec& spec) {
  protocol::SubmitReply reply;
  reply.app = spec.id;

  // "grm.submit" span: child of the ASCT's submission span (carried in on
  // the request's trace slot). Closed on every exit with the outcome.
  obs::Tracer* tr = orb_.tracer();
  obs::Tracer::ActiveSpan submit_span;
  if (tr != nullptr && tr->enabled()) {
    submit_span = tr->start(protocol::kSpanGrmSubmit, orb_.current_trace(), engine_.now());
    submit_span.app = spec.id.value;
  }
  struct SpanCloser {
    Grm& grm;
    obs::Tracer* tr;
    obs::Tracer::ActiveSpan& span;
    protocol::SubmitReply& reply;
    ~SpanCloser() {
      if (tr != nullptr && span.valid()) {
        tr->finish(span, grm.engine_.now(),
                   reply.accepted ? "accepted" : reply.reason);
      }
    }
  } span_closer{*this, tr, submit_span, reply};

  if (spec.tasks.empty()) {
    reply.accepted = false;
    reply.reason = "application has no tasks";
    return reply;
  }
  if (apps_.contains(spec.id)) {
    reply.accepted = false;
    reply.reason = "duplicate application id";
    return reply;
  }
  // Validate the requirement expressions up front so the user gets a
  // synchronous parse error rather than a silently unschedulable app.
  if (!spec.requirements.constraint.empty()) {
    auto parsed = services::Constraint::parse(spec.requirements.constraint);
    if (!parsed.is_ok()) {
      reply.accepted = false;
      reply.reason = "bad constraint: " + parsed.status().message();
      return reply;
    }
  }
  if (!spec.requirements.preference.empty()) {
    auto parsed = services::Preference::parse(spec.requirements.preference);
    if (!parsed.is_ok()) {
      reply.accepted = false;
      reply.reason = "bad preference: " + parsed.status().message();
      return reply;
    }
  }

  // Admission control: refuse work the grid cannot credibly queue rather
  // than letting one tenant's backlog grow without bound.
  if (sched_.enabled) {
    const int incoming = static_cast<int>(spec.tasks.size());
    const sched::TenantSpec quota = tenant_registry_.spec(spec.tenant);
    if (quota.max_queued > 0 &&
        static_cast<int>(queue_.tenant_size(spec.tenant)) + incoming >
            quota.max_queued) {
      reply.accepted = false;
      reply.reason = "tenant queue quota exceeded";
      metrics_.counter("sched_admission_rejected").add();
      return reply;
    }
    if (sched_.max_total_queued > 0 &&
        static_cast<int>(queue_.size()) + incoming > sched_.max_total_queued) {
      reply.accepted = false;
      reply.reason = "grid queue full";
      metrics_.counter("sched_admission_rejected").add();
      return reply;
    }
  }

  AppRecord app;
  app.spec = spec;
  app.outstanding = static_cast<int>(spec.tasks.size());

  std::vector<std::int32_t> rank_segment;
  if (!spec.topology.empty()) {
    if (!plan_topology(app, rank_segment)) {
      reply.accepted = false;
      reply.reason = "virtual topology not satisfiable by current segments";
      metrics_.counter("topology_rejections").add();
      return reply;
    }
  }

  apps_.emplace(spec.id, std::move(app));
  for (std::size_t i = 0; i < spec.tasks.size(); ++i) {
    TaskRecord task;
    task.desc = spec.tasks[i];
    task.app = spec.id;
    if (!rank_segment.empty() && i < rank_segment.size()) {
      task.topology_segment = rank_segment[i];
    }
    if (sched_.enabled) {
      task.tenant = spec.tenant;
      if (spec.bid_deadline > 0) task.deadline = engine_.now() + spec.bid_deadline;
    }
    const TaskId id = task.desc.id;
    const std::string tenant = task.tenant;
    const SimTime deadline = task.deadline;
    if (submit_span.valid()) {
      // Lifetime span per task; every negotiation wave parents on it and
      // its duration is the task's submission→completion latency.
      task.span = tr->start(protocol::kSpanGrmTask, submit_span.context(), engine_.now());
      task.span.app = spec.id.value;
      task.span.task = id.value;
    }
    tasks_.emplace(id, std::move(task));
    queue_.push(id, tenant, deadline);
  }
  metrics_.counter("apps_submitted").add();
  metrics_.counter("tasks_submitted").add(static_cast<std::int64_t>(spec.tasks.size()));
  kick_scheduler();

  reply.accepted = true;
  return reply;
}

bool Grm::plan_topology(AppRecord& app, std::vector<std::int32_t>& rank_segment) {
  if (network_ == nullptr) return false;
  const auto& topo = app.spec.topology;

  // Count registered nodes per segment. Membership — not instantaneous
  // shareability — is the right capacity measure here: a topology plan is a
  // standing allocation, and whether an individual machine is busy at this
  // second is the reservation protocol's problem, not the planner's.
  std::map<std::int32_t, int> capacity;
  for (const auto& [_, record] : nodes_) {
    ++capacity[record.status.segment];
  }

  // Greedily assign each group the smallest segment that satisfies both the
  // member count and the intra-group bandwidth; each segment hosts at most
  // one group so the inter-group constraint is meaningful.
  std::set<std::int32_t> used;
  std::vector<std::int32_t> group_segment;
  for (const auto& group : topo.groups) {
    std::int32_t best = -1;
    int best_cap = std::numeric_limits<int>::max();
    for (const auto& [segment, count] : capacity) {
      if (used.contains(segment) || count < group.nodes) continue;
      const auto& spec = network_->segment(segment);
      if (spec.bandwidth < group.min_intra_bandwidth) continue;
      if (topo.groups.size() > 1 && topo.min_inter_bandwidth > 0 &&
          spec.uplink_bandwidth < topo.min_inter_bandwidth) {
        continue;
      }
      if (count < best_cap) {
        best_cap = count;
        best = segment;
      }
    }
    if (best < 0) return false;
    used.insert(best);
    group_segment.push_back(best);
  }

  rank_segment.clear();
  for (std::size_t g = 0; g < topo.groups.size(); ++g) {
    for (std::int32_t i = 0; i < topo.groups[g].nodes; ++i) {
      rank_segment.push_back(group_segment[g]);
    }
  }
  // Any surplus tasks beyond the topology's node count roam free.
  rank_segment.resize(app.spec.tasks.size(), -1);
  return true;
}

// ---------------------------------------------------------------------------
// Scheduler: candidate selection + negotiation waves
// ---------------------------------------------------------------------------

void Grm::kick_scheduler(SimDuration delay) {
  if (pass_scheduled_ || !started_) return;
  pass_scheduled_ = true;
  engine_.schedule_after(delay, [this] {
    pass_scheduled_ = false;
    scheduler_pass();
  });
}

void Grm::scheduler_pass() {
  // Tenants at their running quota sit out this pass; their queued tasks
  // stay put and a completion report re-kicks the scheduler.
  auto blocked = [this](const std::string& tenant) {
    if (!sched_.enabled) return false;
    const sched::TenantSpec quota = tenant_registry_.spec(tenant);
    return quota.max_running > 0 &&
           tenant_registry_.running(tenant) >= quota.max_running;
  };

  std::size_t budget = queue_.size();
  if (sched_.enabled) {
    // Fairness demands that a freed slot go to the stride-chosen task, not
    // to whichever task's retry backoff happens to expire first — so the
    // economy scheduler ignores per-task backoff and instead throttles the
    // pass itself by the node hints: dispatch one wave per plausibly-free
    // node, or a single probe wave when none look free (the probe is what
    // reaches the no-candidate preemption path).
    std::size_t free_hints = 0;
    for (const auto& [_, record] : nodes_) {
      if (record.status.shareable && record.status.exportable_cpu > 0.0) {
        ++free_hints;
      }
    }
    budget = std::max<std::size_t>(std::min(free_hints, budget), 1);
    // Slot-aware dispatch. Stride order alone equalises long-run dispatch
    // COUNTS, but fairness here is about concurrently-held slots: when a
    // task completes, stride routinely hands the freed slot to a tenant
    // other than the completer, pushing it over its entitlement — which the
    // preemption sweep then undoes with a checkpoint migration. That is a
    // migration per rebalance at steady state. Vetoing an over-entitlement
    // tenant while an under-entitlement tenant has queued work keeps slot
    // counts converged by construction, demoting preemption to the
    // carve-out backstop it is meant to be. With no under-cap competitor
    // queued the veto lifts entirely: dispatch stays work-conserving.
    std::map<std::string, int> committed;
    int committed_total = 0;
    for (const auto& [_, task] : tasks_) {
      if (task.state == TaskState::kRunning ||
          task.state == TaskState::kNegotiating) {
        ++committed[task.tenant];
        ++committed_total;
      }
    }
    const int capacity = committed_total + static_cast<int>(free_hints);
    auto entitled = [&](const std::string& tenant) {
      double total_weight = tenant_registry_.weight(tenant);
      for (const auto& [name, count] : committed) {
        if (count > 0 && name != tenant) {
          total_weight += tenant_registry_.weight(name);
        }
      }
      return total_weight > 0.0 ? static_cast<double>(capacity) *
                                      tenant_registry_.weight(tenant) /
                                      total_weight
                                : static_cast<double>(capacity);
    };
    auto under_cap = [&](const std::string& tenant) {
      const auto it = committed.find(tenant);
      const int current = it == committed.end() ? 0 : it->second;
      return static_cast<double>(current + 1) <= entitled(tenant);
    };
    auto sched_blocked = [&](const std::string& tenant) {
      if (blocked(tenant)) return true;  // hard running quota
      if (under_cap(tenant)) return false;
      for (const auto& [name, head] : queue_.queued_heads()) {
        if (name == tenant || blocked(name)) continue;
        if (under_cap(name)) return true;  // competitor waits under cap
      }
      return false;  // nobody under cap wants the slot: work-conserving
    };
    for (std::size_t i = 0; i < budget && !queue_.empty(); ++i) {
      const auto popped = queue_.pop(sched_blocked);
      if (!popped) break;  // everything left is quota-blocked
      auto it = tasks_.find(*popped);
      if (it == tasks_.end() || it->second.state != TaskState::kPending) {
        ++budget;  // stale entry: doesn't consume a dispatch slot
        continue;
      }
      // Charge at dispatch so later pops in this same pass already see the
      // advanced pass value — a big backlog interleaves instead of bursting.
      queue_.account_dispatch(it->second.tenant, it->second.desc.work);
      metrics_.counter("sched_dispatched").add();
      ++committed[it->second.tenant];  // the wave now holds this slot
      begin_wave(it->second);
    }
    // Preemption is a pass-level policy decision, not a wave-failure
    // fallback: a hint that one node looks free must not hide that a
    // queued tenant is still far below its entitlement while an incumbent
    // hoards the rest of the grid. Sweep each queue head; maybe_preempt
    // enforces the under-/over-share and in-flight-cap checks.
    if (sched_.preemption) {
      for (const auto& [tenant, head] : queue_.queued_heads()) {
        auto it = tasks_.find(head);
        if (it == tasks_.end() || it->second.state != TaskState::kPending) {
          continue;
        }
        if (!maybe_preempt(it->second)) continue;
      }
    }
    return;
  }

  std::deque<TaskId> not_ready;
  SimTime next_eligible = kTimeNever;
  for (std::size_t i = 0; i < budget && !queue_.empty(); ++i) {
    const auto popped = queue_.pop(blocked);
    if (!popped) break;  // everything left is quota-blocked
    const TaskId id = *popped;
    auto it = tasks_.find(id);
    if (it == tasks_.end() || it->second.state != TaskState::kPending) continue;
    TaskRecord& task = it->second;
    if (task.eligible_at > engine_.now()) {
      not_ready.push_back(id);
      next_eligible = std::min(next_eligible, task.eligible_at);
      continue;
    }
    begin_wave(task);
  }
  for (TaskId id : not_ready) {
    auto it = tasks_.find(id);
    if (it != tasks_.end()) {
      queue_.push(id, it->second.tenant, it->second.deadline);
    }
  }
  if (next_eligible != kTimeNever) {
    kick_scheduler(std::max<SimDuration>(1, next_eligible - engine_.now()));
  }
}

std::string Grm::build_constraint(const TaskRecord& task) const {
  const AppRecord& app = apps_.at(task.app);
  std::string expr = "shareable == true and exportable_cpu > 0";
  if (task.desc.ram_needed > 0) {
    expr += " and free_ram_mb >= " + std::to_string(task.desc.ram_needed / kMiB);
  }
  if (!task.desc.binary_platform.empty()) {
    expr += " and '" + task.desc.binary_platform + "' in platforms";
  }
  if (task.topology_segment >= 0) {
    expr += " and segment == " + std::to_string(task.topology_segment);
  }
  if (!app.spec.requirements.constraint.empty()) {
    expr += " and (" + app.spec.requirements.constraint + ")";
  }
  return expr;
}

std::vector<const services::ServiceOffer*> Grm::candidates_for(
    const TaskRecord& task) {
  const AppRecord& app = apps_.at(task.app);

  const std::string& pref_src = app.spec.requirements.preference.empty()
                                    ? options_.default_preference
                                    : app.spec.requirements.preference;

  // With forecasting on, pull a deep candidate list: the safe-but-ordinary
  // machines the forecast favours would otherwise be truncated away by the
  // trader preference (e.g. "max exportable_mips") before re-ranking.
  const std::size_t pool_depth =
      static_cast<std::size_t>(options_.max_candidates_per_wave) *
      (options_.use_forecast && gupa_ != nullptr ? 16 : 3);
  // The string query path memoizes compiled expressions in the Trader's LRU,
  // so repeat waves of the same task shape skip the parse entirely.
  obs::Tracer* tr = orb_.tracer();
  obs::Tracer::ActiveSpan qspan;
  if (tr != nullptr && tr->enabled()) {
    qspan = tr->start(protocol::kSpanTraderQuery,
                      task.span.valid() ? task.span.context()
                                        : orb_.current_trace(),
                      engine_.now());
    qspan.app = task.app.value;
    qspan.task = task.desc.id.value;
  }
  // Wall-clock query latency: exported through the metrics hub only, never
  // fed back into the simulation, so it cannot perturb reproducibility.
  const auto wall_begin = std::chrono::steady_clock::now();
  auto query = trader_.query(protocol::kNodeServiceType, build_constraint(task),
                             pref_src, pool_depth, &rng_);
  metrics_.summary("trader_query_us")
      .observe(std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - wall_begin)
                   .count());
  if (tr != nullptr && qspan.valid()) {
    tr->finish(qspan, engine_.now(),
               query.is_ok()
                   ? std::to_string(query.value().size()) + " offers"
                   : "query error");
  }
  if (!query.is_ok()) return {};  // validated at submit; belt and braces
  auto offers = std::move(query).value();

  if (options_.use_forecast && gupa_ != nullptr && !offers.empty()) {
    // Re-rank by the probability the node stays idle long enough. The
    // forecast is quantized into coarse bins so the trader preference still
    // breaks ties among comparable candidates.
    struct Scored {
      const services::ServiceOffer* offer;
      int bin;
      std::size_t pos;
    };
    std::vector<Scored> scored;
    scored.reserve(offers.size());
    for (std::size_t i = 0; i < offers.size(); ++i) {
      const auto* offer = offers[i];
      const auto status = protocol::from_properties(offer->properties);
      double p = 0.5;  // unknown node: neutral prior
      if (status.dedicated) {
        p = 1.0;
      } else {
        protocol::ForecastRequest request;
        request.node = status.node;
        request.at = engine_.now();
        request.horizon = app.spec.estimated_duration > 0
                              ? app.spec.estimated_duration
                              : from_seconds(task.desc.work /
                                             std::max(1.0, status.cpu_mips));
        const auto forecast = gupa_->forecast(request);
        if (forecast.known) p = forecast.p_idle_through;
        metrics_.counter("forecast_queries").add();
      }
      scored.push_back({offer, static_cast<int>(p * 10.0), i});
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const Scored& a, const Scored& b) {
                       if (a.bin != b.bin) return a.bin > b.bin;
                       return a.pos < b.pos;
                     });
    std::vector<const services::ServiceOffer*> ranked;
    ranked.reserve(scored.size());
    for (const auto& s : scored) ranked.push_back(s.offer);
    offers = std::move(ranked);
  }

  // Deprioritize nodes another wave is already negotiating with: without
  // this, every concurrent wave snapshots the same ranking and stampedes
  // the top candidate, manufacturing refusals the protocol then has to
  // grind through.
  std::stable_sort(offers.begin(), offers.end(),
                   [this](const services::ServiceOffer* a,
                          const services::ServiceOffer* b) {
                     auto load = [this](const services::ServiceOffer* o) {
                       const auto node = NodeId(static_cast<std::uint64_t>(
                           o->properties.get_int(protocol::kPropNodeId)
                               .value_or(-1)));
                       auto it = inflight_.find(node);
                       return it == inflight_.end() ? 0 : it->second;
                     };
                     return load(a) < load(b);
                   });

  if (offers.size() > static_cast<std::size_t>(options_.max_candidates_per_wave)) {
    offers.resize(static_cast<std::size_t>(options_.max_candidates_per_wave));
  }
  return offers;
}

void Grm::begin_wave(TaskRecord& task) {
  auto offers = candidates_for(task);
  if (offers.empty()) {
    if (sched_.enabled && sched_.preemption && maybe_preempt(task)) {
      // A victim is checkpointing out. Requeue without advancing the
      // backoff: the eviction report (or the freed node's heartbeat)
      // re-kicks the scheduler and this task finds the slot.
      requeue(task, 1 * kSecond);
      return;
    }
    ++task.waves;
    metrics_.counter("waves_no_candidates").add();
    if (task.waves >= options_.forward_after_waves &&
        (parent_.valid() || !children_.empty())) {
      forward_remote(task);
    } else {
      requeue_backoff(task);
    }
    return;
  }

  auto wave = std::make_shared<Wave>();
  wave->task = task.desc.id;
  wave->candidates.reserve(offers.size());
  for (const auto* offer : offers) {
    const auto status = protocol::from_properties(offer->properties);
    wave->candidates.push_back(Placement{status.node, offer->provider});
  }
  task.state = TaskState::kNegotiating;
  continue_wave(wave);
}

void Grm::continue_wave(const std::shared_ptr<Wave>& wave) {
  if (!started_ || orb_.is_shutdown()) return;
  auto it = tasks_.find(wave->task);
  if (it == tasks_.end() || it->second.state != TaskState::kNegotiating) return;

  if (wave->index >= wave->candidates.size()) {
    wave_failed(wave);
    return;
  }
  const Placement candidate = wave->candidates[wave->index++];

  protocol::ReservationRequest reserve;
  reserve.id = ReservationId(next_reservation_++);
  reserve.task = wave->task;
  reserve.cpu_fraction = options_.cpu_request;
  reserve.ram = it->second.desc.ram_needed;
  reserve.hold = options_.reservation_hold;
  if (sched_.enabled) {
    // The bid rides the reservation so node owners can screen it (NCC
    // bid_filter). Deadline travels as time remaining: absolute sim times
    // mean nothing to the provider.
    if (auto app_it = apps_.find(it->second.app); app_it != apps_.end()) {
      reserve.tenant = it->second.tenant;
      reserve.bid_budget = app_it->second.spec.bid_budget;
      if (it->second.deadline > engine_.now()) {
        reserve.bid_deadline = it->second.deadline - engine_.now();
      }
    }
  }

  metrics_.counter("negotiation_rounds").add();
  ++inflight_[candidate.node];

  // "grm.reserve" span, parented on the task's lifetime span; the TraceScope
  // stamps its context into the outgoing request so the LRM's "lrm.reserve"
  // span links under it.
  obs::Tracer* tr = orb_.tracer();
  obs::Tracer::ActiveSpan rspan;
  if (tr != nullptr && tr->enabled()) {
    rspan = tr->start(protocol::kSpanGrmReserve, it->second.span.context(), engine_.now());
    rspan.task = wave->task.value;
    rspan.node = candidate.node.value;
  }
  orb::TraceScope trace_scope(orb_, rspan.context());
  orb::call<protocol::ReservationRequest, protocol::ReservationReply>(
      orb_, candidate.lrm, "reserve", reserve,
      [this, wave, candidate, rspan](Result<protocol::ReservationReply> reply) {
        if (--inflight_[candidate.node] <= 0) inflight_.erase(candidate.node);
        obs::Tracer* tr = orb_.tracer();
        if (!reply.is_ok()) {
          if (tr != nullptr) tr->finish(rspan, engine_.now(), "timeout");
          metrics_.counter("negotiation_timeouts").add();
          continue_wave(wave);
          return;
        }
        if (tr != nullptr) {
          tr->finish(rspan, engine_.now(),
                     reply.value().granted ? "granted" : "refused");
        }
        if (!reply.value().granted) {
          metrics_.counter("reservations_refused_remote").add();
          // Piggy-backed truth corrects our stale hint immediately.
          auto node_it = nodes_.find(candidate.node);
          if (node_it != nodes_.end()) {
            node_it->second.status.exportable_cpu = reply.value().exportable_cpu;
            node_it->second.status.free_ram = reply.value().free_ram;
            node_it->second.status.shareable =
                reply.value().exportable_cpu > 0.0;
            (void)trader_.refresh(
                node_it->second.offer,
                [&node_it](services::PropertySet& props) {
                  protocol::update_properties(node_it->second.status, props);
                },
                engine_.now());
          }
          continue_wave(wave);
          return;
        }

        auto task_it = tasks_.find(wave->task);
        if (task_it == tasks_.end() ||
            task_it->second.state != TaskState::kNegotiating) {
          return;  // task vanished (app cancelled) — reservation will expire
        }
        protocol::ExecuteRequest execute;
        execute.reservation = reply.value().id;
        execute.task = task_it->second.desc;
        execute.report_to = self_ref_;
        execute.restore_state = restore_state_for(task_it->second);
        if (sched_.enabled) {
          // Preempted task: tell the new node which peers hold its final
          // checkpoint chunks so the restore starts from warm stores.
          execute.ckpt_peers = task_it->second.ckpt_peers;
        }

        obs::Tracer::ActiveSpan espan;
        if (tr != nullptr && tr->enabled()) {
          espan = tr->start(protocol::kSpanGrmExecute, task_it->second.span.context(),
                            engine_.now());
          espan.task = wave->task.value;
          espan.node = candidate.node.value;
        }
        orb::TraceScope trace_scope(orb_, espan.context());
        orb::call<protocol::ExecuteRequest, protocol::ExecuteReply>(
            orb_, candidate.lrm, "execute", execute,
            [this, wave, candidate,
             espan](Result<protocol::ExecuteReply> exec_reply) {
              const bool ok =
                  exec_reply.is_ok() && exec_reply.value().accepted;
              if (obs::Tracer* tr = orb_.tracer(); tr != nullptr) {
                tr->finish(espan, engine_.now(), ok ? "accepted" : "failed");
              }
              if (!ok) {
                metrics_.counter("executes_failed").add();
                continue_wave(wave);
                return;
              }
              task_placed(wave->task, candidate);
            },
            options_.call_timeout);
      },
      options_.call_timeout);
}

void Grm::wave_failed(const std::shared_ptr<Wave>& wave) {
  auto it = tasks_.find(wave->task);
  if (it == tasks_.end()) return;
  TaskRecord& task = it->second;
  task.state = TaskState::kPending;
  ++task.waves;
  metrics_.counter("waves_exhausted").add();
  if (task.waves >= options_.forward_after_waves &&
      (parent_.valid() || !children_.empty())) {
    forward_remote(task);
  } else {
    requeue_backoff(task);
  }
}

void Grm::task_placed(TaskId id, const Placement& placement) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  TaskRecord& task = it->second;
  if (task.state != TaskState::kNegotiating) {
    // The task moved on while the Execute reply was in flight (e.g. its
    // node was declared dead and the task requeued, or a duplicate reply
    // slipped past the ORB window). Don't double-place: tell the node to
    // drop its copy.
    metrics_.counter("placements_discarded").add();
    if (placement.lrm.valid()) {
      orb::oneway(orb_, placement.lrm, "cancel", protocol::CancelTask{id});
    }
    return;
  }
  task.state = TaskState::kRunning;
  task.placement = placement;
  task.waves = 0;
  task.backoff = 0;  // success resets the retry schedule
  metrics_.counter("tasks_placed").add();
  note_task_started(task);

  auto app_it = apps_.find(task.app);
  if (app_it == apps_.end()) return;
  AppRecord& app = app_it->second;
  ++app.running;
  notify(app, AppEventKind::kTaskScheduled, id, placement.node, "");

  // Keep the GRM's own hint honest: that node now has less capacity.
  auto node_it = nodes_.find(placement.node);
  if (node_it != nodes_.end()) {
    node_it->second.status.exportable_cpu = std::max(
        0.0, node_it->second.status.exportable_cpu - options_.cpu_request);
    node_it->second.status.running_tasks += 1;
    (void)trader_.refresh(
        node_it->second.offer,
        [&node_it](services::PropertySet& props) {
          protocol::update_properties(node_it->second.status, props);
        },
        engine_.now());
  }

  if (app.spec.kind == AppKind::kBsp) {
    const std::int32_t total = static_cast<std::int32_t>(app.spec.tasks.size());
    if (!app.bsp_ready_fired && app.running == total) {
      app.bsp_ready_fired = true;
      if (bsp_ready_) bsp_ready_(app.spec.id);
    } else if (app.bsp_ready_fired && bsp_placed_) {
      bsp_placed_(app.spec.id, task.desc.bsp_rank, placement);
    }
  }
}

void Grm::requeue(TaskRecord& task, SimDuration delay) {
  task.state = TaskState::kPending;
  task.eligible_at = engine_.now() + delay;
  // push() deduplicates: a task already queued (e.g. a node-death sweep
  // racing a duplicated eviction report) keeps exactly one queue entry.
  queue_.push(task.desc.id, task.tenant, task.deadline);
  kick_scheduler(std::max<SimDuration>(delay, 1));
}

void Grm::credit_node_capacity(NodeId node) {
  // Inverse of the placement-time decrement: a completion or eviction
  // report frees the reporter's slot NOW, not at its next heartbeat. Left
  // stale, the trader hides the freed node for a full heartbeat period;
  // every queued task piles into requeue backoff, and dispatch order
  // degrades from stride order to whoever's backoff happens to expire
  // first — which is both unfair and deadline-hostile. The hint may
  // overshoot the node's true capacity (an owner may have returned); the
  // reservation protocol refuses and the next heartbeat trues it up.
  auto node_it = nodes_.find(node);
  if (node_it == nodes_.end()) return;
  node_it->second.status.exportable_cpu += options_.cpu_request;
  node_it->second.status.running_tasks =
      std::max(0, node_it->second.status.running_tasks - 1);
  node_it->second.status.shareable = true;
  (void)trader_.refresh(
      node_it->second.offer,
      [&node_it](services::PropertySet& props) {
        protocol::update_properties(node_it->second.status, props);
      },
      engine_.now());
}

bool Grm::maybe_preempt(const TaskRecord& requester) {
  if (static_cast<int>(preempting_.size()) >= sched_.max_preemptions_per_wave) {
    return false;
  }
  // Slot count includes waves still negotiating: the sweep runs from passes
  // kicked by completion/eviction reports, which is precisely when running
  // counts have transiently dipped and the replacement dispatches are not
  // yet accepted. Judging entitlements against that dip systematically
  // under-counts capacity at every decision point and stalls the carve.
  int slots = tenant_registry_.total_running();
  for (const auto& [_, task] : tasks_) {
    if (task.state == TaskState::kNegotiating) ++slots;
  }
  if (slots <= 0) return false;
  // Hysteresis keeps preemption convergent instead of oscillating. A naive
  // "requester below entitlement, victim above" rule ping-pongs forever at
  // fractional entitlements: evicting the victim pushes the requester just
  // past its share, the ex-victim's queued task becomes the new requester,
  // and the grid churns checkpoints at steady state doing no useful work.
  // Both sides are therefore judged POST-move: the requester must still be
  // at or under its entitlement after gaining a slot, the victim still at
  // or over after losing one. Then neither side can immediately qualify
  // for the reverse move, so every migration strictly shrinks the fairness
  // gap.
  if (static_cast<double>(tenant_registry_.running(requester.tenant) + 1) >
      tenant_registry_.entitled_slots(requester.tenant, slots)) {
    return false;
  }
  // In-flight preemptions have not hit the running counts yet; charge them
  // to their victim tenants so concurrent waves cannot overshoot one
  // tenant.
  std::map<std::string, int> inflight;
  for (const TaskId id : preempting_) {
    auto it = tasks_.find(id);
    if (it != tasks_.end()) ++inflight[it->second.tenant];
  }
  // Deterministic victim pick: among running sequential tasks of over-share
  // tenants (other than the requester's), lowest (tenant name, task id).
  const TaskRecord* victim = nullptr;
  for (const auto& [id, task] : tasks_) {
    if (task.state != TaskState::kRunning) continue;
    if (task.tenant == requester.tenant) continue;
    if (task.desc.kind == AppKind::kBsp) continue;  // residents migrate via BSP
    if (preempting_.contains(id)) continue;
    // Count the requester as active even with zero running tasks: its
    // queued demand is what dilutes the incumbents' shares. Without this a
    // tenant monopolizing the grid is always exactly at-entitlement and no
    // preemption can ever fire.
    const auto inflight_it = inflight.find(task.tenant);
    const int effective_running =
        tenant_registry_.running(task.tenant) -
        (inflight_it == inflight.end() ? 0 : inflight_it->second);
    if (static_cast<double>(effective_running - 1) <
        tenant_registry_.entitled_slots(task.tenant, slots,
                                        requester.tenant)) {
      continue;
    }
    if (victim == nullptr || task.tenant < victim->tenant ||
        (task.tenant == victim->tenant && id < victim->desc.id)) {
      victim = &task;
    }
  }
  if (victim == nullptr || !victim->placement.lrm.valid()) return false;

  protocol::PreemptRequest preempt;
  preempt.task = victim->desc.id;
  preempt.peers = pick_ckpt_peers(victim->placement.node);
  // Remember where the final image will land: the successor Execute carries
  // these peers so the new node restores warm.
  tasks_.at(victim->desc.id).ckpt_peers = preempt.peers;
  preempting_.insert(victim->desc.id);
  metrics_.counter("sched_preemptions").add();
  orb::oneway(orb_, victim->placement.lrm, "preempt", preempt);
  return true;
}

std::vector<orb::ObjectRef> Grm::pick_ckpt_peers(NodeId exclude) const {
  // A couple of warm stores besides the repository is plenty: the restore
  // path falls back to the repository for anything a peer is missing.
  constexpr std::size_t kPreemptPeers = 2;
  std::vector<orb::ObjectRef> peers;
  for (const auto& [node, agent] : ckpt_agents_) {
    if (node == exclude || !agent.valid()) continue;
    peers.push_back(agent);
    if (peers.size() >= kPreemptPeers) break;
  }
  return peers;
}

void Grm::requeue_backoff(TaskRecord& task) {
  // Economy mode retries fast. The legacy 20-second base exists to spread
  // retry storms against stale hints, but a refused reservation already
  // piggy-backs the node's true capacity into the trader — and a tenant
  // sitting out tens of seconds per collision reads as a fairness hole
  // (whole-grid occupancy dips after synchronized completion bursts).
  if (sched_.enabled) {
    requeue(task, 1 * kSecond);
    return;
  }
  task.backoff = next_backoff(options_.backoff, task.backoff, backoff_rng_);
  requeue(task, task.backoff);
}

std::vector<std::uint8_t> Grm::restore_state_for(const TaskRecord& task) const {
  if (checkpoints_ == nullptr || task.desc.kind == AppKind::kBsp) return {};
  const auto* checkpoint =
      checkpoints_->latest(task.app, std::max(0, task.desc.bsp_rank));
  if (checkpoint == nullptr) return {};
  return checkpoint->state;
}

// ---------------------------------------------------------------------------
// Execution reports
// ---------------------------------------------------------------------------

void Grm::handle_report(const protocol::TaskReport& report) {
  auto it = tasks_.find(report.task);
  if (it == tasks_.end()) return;
  TaskRecord& task = it->second;
  auto app_it = apps_.find(task.app);
  if (app_it == apps_.end()) return;
  AppRecord& app = app_it->second;

  // "grm.report" span: child of the LRM's "lrm.run" span (carried on the
  // report request), so completion causality is visible in the trace tree.
  obs::Tracer* tr = orb_.tracer();
  obs::Tracer::ActiveSpan report_span;
  if (tr != nullptr && tr->enabled()) {
    report_span = tr->start(protocol::kSpanGrmReport, orb_.current_trace(), engine_.now());
    report_span.app = task.app.value;
    report_span.task = report.task.value;
    report_span.node = report.node.value;
    tr->finish(report_span, engine_.now(),
               protocol::task_outcome_name(report.outcome));
  }

  switch (report.outcome) {
    case TaskOutcome::kCompleted: {
      if (task.state == TaskState::kCompleted) {
        // Duplicate completion: the node was declared dead (and the task
        // replayed elsewhere) or the report frame was duplicated. The app's
        // accounting already saw this task finish exactly once.
        metrics_.counter("duplicate_reports_ignored").add();
        break;
      }
      if (task.state == TaskState::kRunning) {
        --app.running;
        note_task_stopped(task);
      }
      task.remote_timeout.cancel();
      task.remote_deadline = 0;
      task.state = TaskState::kCompleted;
      --app.outstanding;
      preempting_.erase(report.task);
      if (sched_.enabled && task.deadline > 0) {
        metrics_.counter(engine_.now() <= task.deadline
                             ? "sched_deadline_hits"
                             : "sched_deadline_misses")
            .add();
      }
      // A finished task frees a slot a quota-blocked tenant may be waiting
      // on; FIFO mode never blocks, so the historical event stream is
      // untouched.
      if (sched_.enabled) {
        credit_node_capacity(report.node);
        if (!queue_.empty()) kick_scheduler();
      }
      if (tr != nullptr && task.span.valid()) {
        // Close the lifetime span: its duration is the task's
        // submission→completion latency (E13's gated quantity).
        tr->finish(task.span, engine_.now(), "completed");
        task.span = {};
      }
      metrics_.counter("tasks_completed").add();
      notify(app, AppEventKind::kTaskCompleted, report.task, report.node, "");
      if (app.adopted_remote && app.origin.valid()) {
        // Relay to the origin cluster, which owns the app's lifecycle.
        orb::reliable_oneway(orb_, app.origin, "report", report);
      }
      maybe_app_done(task.app);
      break;
    }
    case TaskOutcome::kEvicted:
    case TaskOutcome::kNodeFailed: {
      if (task.state != TaskState::kRunning ||
          task.placement.node != report.node) {
        // Stale: the task is not (or no longer) running on the reporter —
        // e.g. the dead-node sweep already reclaimed it, or this is a
        // duplicated frame. Acting on it would requeue the task twice.
        metrics_.counter("stale_reports_ignored").add();
        break;
      }
      --app.running;
      note_task_stopped(task);
      preempting_.erase(report.task);
      ++task.evictions;
      metrics_.counter(report.outcome == TaskOutcome::kEvicted
                           ? "tasks_evicted"
                           : "tasks_node_failed")
          .add();
      notify(app, AppEventKind::kTaskEvicted, report.task, report.node,
             report.detail);
      if (app.spec.kind == AppKind::kBsp && bsp_lost_) {
        bsp_lost_(app.spec.id, task.desc.bsp_rank);
      }
      if (sched_.enabled) credit_node_capacity(report.node);
      requeue(task, 1 * kSecond);
      notify(app, AppEventKind::kTaskRescheduled, report.task, NodeId(), "");
      break;
    }
    case TaskOutcome::kCancelled:
      break;  // we initiated it; bookkeeping already done
  }
}

void Grm::notify(const AppRecord& app, AppEventKind kind, TaskId task,
                 NodeId node, const std::string& detail) {
  if (!app.spec.notify.valid()) return;
  protocol::AppEvent event;
  event.app = app.spec.id;
  event.task = task;
  event.kind = kind;
  event.node = node;
  event.at = engine_.now();
  event.detail = detail;
  orb::reliable_oneway(orb_, app.spec.notify, "app_event", event);
}

void Grm::maybe_app_done(AppId app_id) {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) return;
  AppRecord& app = it->second;
  if (app.outstanding > 0) return;
  // Remote fragments stay silent: the origin cluster owns the app-level
  // completion event.
  if (!app.adopted_remote) {
    notify(app, AppEventKind::kAppCompleted, TaskId(), NodeId(), "");
  }
  metrics_.counter("apps_completed").add();
}

void Grm::handle_cancel_app(AppId app_id) {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) return;
  metrics_.counter("apps_cancelled").add();
  // Erase the task records outright — historically they lingered as kFailed
  // tombstones carrying live backoff/remote-timeout state, so resubmitting
  // the same task ids silently no-op'd the emplace and the "new" tasks
  // inherited a dead app's retry schedule (or never ran at all).
  for (auto task_it = tasks_.begin(); task_it != tasks_.end();) {
    TaskRecord& task = task_it->second;
    if (task.app != app_id) {
      ++task_it;
      continue;
    }
    if (task.state == TaskState::kRunning) {
      if (task.placement.lrm.valid()) {
        orb::oneway(orb_, task.placement.lrm, "cancel",
                    protocol::CancelTask{task_it->first});
      }
      note_task_stopped(task);
    }
    task.remote_timeout.cancel();
    queue_.erase(task_it->first);
    preempting_.erase(task_it->first);
    task_it = tasks_.erase(task_it);
  }
  if (it->second.spec.kind == AppKind::kBsp && bsp_cancelled_) {
    bsp_cancelled_(app_id);
  }
  notify(it->second, AppEventKind::kAppFailed, TaskId(), NodeId(),
         "cancelled by user");
  apps_.erase(it);
}

// ---------------------------------------------------------------------------
// BSP integration
// ---------------------------------------------------------------------------

void Grm::set_bsp_handlers(BspReadyHandler ready, BspRankPlacedHandler placed,
                           BspRankLostHandler lost,
                           BspCancelledHandler cancelled) {
  bsp_ready_ = std::move(ready);
  bsp_placed_ = std::move(placed);
  bsp_lost_ = std::move(lost);
  bsp_cancelled_ = std::move(cancelled);
}

const Grm::Placement* Grm::placement_of(TaskId task) const {
  auto it = tasks_.find(task);
  if (it == tasks_.end() || it->second.state != TaskState::kRunning) {
    return nullptr;
  }
  return &it->second.placement;
}

void Grm::complete_bsp_app(AppId app_id) {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) return;
  AppRecord& app = it->second;
  for (auto& [task_id, task] : tasks_) {
    if (task.app != app_id) continue;
    if (task.state == TaskState::kRunning) {
      if (task.placement.lrm.valid()) {
        orb::oneway(orb_, task.placement.lrm, "cancel",
                    protocol::CancelTask{task_id});
      }
      --app.running;
      note_task_stopped(task);
    }
    preempting_.erase(task_id);
    task.state = TaskState::kCompleted;
  }
  app.outstanding = 0;
  notify(app, AppEventKind::kAppCompleted, TaskId(), NodeId(), "");
  metrics_.counter("apps_completed").add();
}

// ---------------------------------------------------------------------------
// Inter-cluster hierarchy
// ---------------------------------------------------------------------------

protocol::ClusterSummary Grm::build_summary() const {
  protocol::ClusterSummary summary;
  summary.cluster = cluster_;
  summary.grm = self_ref_;
  summary.total_nodes = static_cast<std::int32_t>(nodes_.size());
  std::set<std::string> platforms;
  for (const auto& [_, record] : nodes_) {
    if (record.status.shareable) {
      ++summary.shareable_nodes;
      summary.total_exportable_mips +=
          record.status.exportable_cpu * record.status.cpu_mips;
      summary.max_free_ram_mb =
          std::max(summary.max_free_ram_mb, record.status.free_ram / kMiB);
    }
    platforms.insert(record.status.platforms.begin(),
                     record.status.platforms.end());
  }
  summary.platforms.assign(platforms.begin(), platforms.end());
  summary.timestamp = engine_.now();
  return summary;
}

void Grm::push_summary() {
  if (!parent_.valid()) return;
  orb::oneway(orb_, parent_, kOpClusterSummary, build_summary());
}

void Grm::handle_cluster_summary(const protocol::ClusterSummary& summary) {
  child_summaries_[summary.cluster] = summary;
}

void Grm::forward_remote(TaskRecord& task) {
  const AppRecord& app = apps_.at(task.app);

  protocol::RemoteSubmit remote;
  remote.spec = app.spec;
  remote.spec.tasks = {task.desc};
  remote.spec.topology = {};  // topology is a local-cluster concept
  remote.ttl = 8;
  remote.visited_clusters = {cluster_.value};
  remote.origin_grm = self_ref_;

  // Next hop: a child with advertised capacity, else the parent.
  orb::ObjectRef hop;
  for (const auto& [_, summary] : child_summaries_) {
    if (summary.shareable_nodes > 0) {
      hop = summary.grm;
      break;
    }
  }
  if (!hop.valid()) hop = parent_;
  if (!hop.valid()) {
    requeue_backoff(task);
    return;
  }

  task.state = TaskState::kRemote;
  metrics_.counter("remote_forwards").add();
  {
    // Keep the remote hop inside the task's trace.
    orb::TraceScope trace_scope(orb_, task.span.context());
    orb::oneway(orb_, hop, kOpRemoteSubmit, remote);
  }

  // If nobody adopts in time, reclaim the task locally.
  task.remote_deadline = engine_.now() + 60 * kSecond;
  arm_remote_timeout(task);
}

void Grm::arm_remote_timeout(TaskRecord& task) {
  const TaskId id = task.desc.id;
  const SimDuration delay =
      task.remote_deadline > engine_.now() ? task.remote_deadline - engine_.now()
                                           : 0;
  task.remote_timeout = engine_.schedule_after(delay, [this, id] {
    auto it = tasks_.find(id);
    if (it == tasks_.end() || it->second.state != TaskState::kRemote) return;
    metrics_.counter("remote_timeouts").add();
    it->second.remote_deadline = 0;
    it->second.waves = 0;  // start the local/remote cycle over
    requeue_backoff(it->second);
  });
}

void Grm::handle_remote_submit(const protocol::RemoteSubmit& request) {
  metrics_.counter("remote_submits_seen").add();
  if (request.ttl <= 0) return;
  if (std::find(request.visited_clusters.begin(), request.visited_clusters.end(),
                cluster_.value) != request.visited_clusters.end()) {
    return;  // cycle — drop; origin timeout recovers
  }
  if (request.spec.tasks.size() != 1) return;

  // Can we host it? Probe the trader with the same constraint the local
  // scheduler would use. A second task of an app we already adopted simply
  // extends the existing fragment.
  TaskRecord probe;
  probe.desc = request.spec.tasks.front();
  probe.app = request.spec.id;
  bool can_host = false;
  auto app_it = apps_.find(request.spec.id);
  if (app_it == apps_.end()) {
    AppRecord app;
    app.spec = request.spec;
    // Lifecycle reporting for an adopted fragment flows through the origin
    // GRM (which owns the app and its ASCT notifications), so the local
    // fragment never notifies the user directly.
    app.spec.notify = orb::ObjectRef{};
    app.adopted_remote = true;
    app.origin = request.origin_grm;
    app.outstanding = 1;
    apps_.emplace(request.spec.id, std::move(app));
    can_host = !candidates_for(probe).empty();
    if (!can_host) apps_.erase(request.spec.id);
  } else if (app_it->second.adopted_remote &&
             !tasks_.contains(probe.desc.id)) {
    can_host = !candidates_for(probe).empty();
    if (can_host) ++app_it->second.outstanding;
  }

  if (can_host) {
    TaskRecord task;
    task.desc = request.spec.tasks.front();
    task.app = request.spec.id;
    if (sched_.enabled) {
      // The bid crossed the cluster boundary on the RemoteSubmit frame;
      // adopted fragments compete under the same economy as local work.
      task.tenant = request.spec.tenant;
      if (request.spec.bid_deadline > 0) {
        task.deadline = engine_.now() + request.spec.bid_deadline;
      }
    }
    const TaskId id = task.desc.id;
    if (obs::Tracer* tr = orb_.tracer(); tr != nullptr && tr->enabled()) {
      // Adopted fragment: parent the local lifetime span on the origin
      // cluster's task context carried in the remote_submit request.
      task.span = tr->start(protocol::kSpanGrmTask, orb_.current_trace(),
                            engine_.now());
      task.span.app = request.spec.id.value;
      task.span.task = id.value;
    }
    const std::string tenant = task.tenant;
    const SimTime deadline = task.deadline;
    tasks_.emplace(id, std::move(task));
    queue_.push(id, tenant, deadline);
    kick_scheduler();
    metrics_.counter("remote_adoptions").add();

    protocol::RemoteAdopted ack;
    ack.app = request.spec.id;
    ack.task = id;
    ack.by_cluster = cluster_;
    ack.hops = static_cast<std::int32_t>(request.visited_clusters.size());
    orb::oneway(orb_, request.origin_grm, kOpRemoteAdopted, ack);
    return;
  }

  // Forward along: unvisited child with capacity first, then parent.
  protocol::RemoteSubmit next = request;
  next.ttl -= 1;
  next.visited_clusters.push_back(cluster_.value);

  orb::ObjectRef hop;
  for (const auto& [id, summary] : child_summaries_) {
    if (summary.shareable_nodes <= 0) continue;
    if (std::find(next.visited_clusters.begin(), next.visited_clusters.end(),
                  id.value) != next.visited_clusters.end()) {
      continue;
    }
    hop = summary.grm;
    break;
  }
  if (!hop.valid() && parent_.valid()) hop = parent_;
  if (!hop.valid()) return;
  metrics_.counter("remote_forwards").add();
  orb::oneway(orb_, hop, kOpRemoteSubmit, next);
}

void Grm::handle_remote_adopted(const protocol::RemoteAdopted& ack) {
  auto it = tasks_.find(ack.task);
  if (it == tasks_.end() || it->second.state != TaskState::kRemote) return;
  it->second.remote_timeout.cancel();
  it->second.remote_deadline = 0;
  metrics_.counter("remote_delegations").add();
  metrics_.summary("remote_hops").observe(static_cast<double>(ack.hops));
  // The adopting cluster executes the task but this GRM keeps ownership:
  // the adopter relays the final TaskReport here, and only that report
  // decrements the app's outstanding count.
}

// ---------------------------------------------------------------------------
// Control-plane snapshots (docs/snapshots.md)
// ---------------------------------------------------------------------------

void Grm::save(cdr::Writer& w) const {
  w.write_u64(next_reservation_);
  cdr::Codec<Rng::State>::encode(w, rng_.state());
  cdr::Codec<Rng::State>::encode(w, backoff_rng_.state());

  w.write_u32(static_cast<std::uint32_t>(segment_epochs_.size()));
  for (const auto& [segment, epoch] : segment_epochs_) {
    w.write_i32(segment);
    w.write_u64(epoch);
  }

  // nodes_ is hash-keyed; sort for deterministic bytes.
  std::vector<NodeId> node_ids;
  node_ids.reserve(nodes_.size());
  for (const auto& [id, _] : nodes_) node_ids.push_back(id);
  std::sort(node_ids.begin(), node_ids.end());
  w.write_u32(static_cast<std::uint32_t>(node_ids.size()));
  for (const NodeId id : node_ids) {
    const NodeRecord& record = nodes_.at(id);
    cdr::Codec<protocol::NodeStatus>::encode(w, record.status);
    w.write_id(record.offer);
    w.write_i64(record.last_update);
  }

  // encode_base: the spec's bid extension is a *wire* tail (detected via
  // remaining()); in this nesting context the economy fields are written
  // explicitly, version-gated, right after the base layout.
  w.write_u32(static_cast<std::uint32_t>(apps_.size()));
  for (const auto& [_, app] : apps_) {
    cdr::Codec<protocol::ApplicationSpec>::encode_base(w, app.spec);
    if (sched_.enabled) {
      w.write_string(app.spec.tenant);
      w.write_f64(app.spec.bid_budget);
      w.write_i64(app.spec.bid_deadline);
    }
    w.write_bool(app.adopted_remote);
    cdr::Codec<orb::ObjectRef>::encode(w, app.origin);
    w.write_i32(app.outstanding);
    w.write_i32(app.running);
    w.write_bool(app.bsp_ready_fired);
    w.write_bool(app.failed);
  }

  w.write_u32(static_cast<std::uint32_t>(tasks_.size()));
  for (const auto& [_, task] : tasks_) {
    cdr::Codec<protocol::TaskDescriptor>::encode(w, task.desc);
    w.write_id(task.app);
    w.write_u8(static_cast<std::uint8_t>(task.state));
    w.write_id(task.placement.node);
    cdr::Codec<orb::ObjectRef>::encode(w, task.placement.lrm);
    w.write_i32(task.waves);
    w.write_i32(task.evictions);
    w.write_i64(task.backoff);
    w.write_i64(task.eligible_at);
    w.write_i32(task.topology_segment);
    w.write_i64(task.remote_deadline);
    if (sched_.enabled) {
      w.write_string(task.tenant);
      w.write_i64(task.deadline);
    }
    // remote_timeout (event handle) and span (tracer state) are transients:
    // load() re-arms the former from remote_deadline; spans restart cold.
    // ckpt_peers and the preempting set are transient too: an in-flight
    // preemption resolves through the eviction report either way.
  }

  // Queue ids in FIFO (arrival) order — the version-1 layout; version 2
  // appends the per-entry tenant/deadline metadata and the tenant passes so
  // long-run fair shares survive a failover.
  const std::vector<TaskId> fifo = queue_.fifo_order();
  w.write_u32(static_cast<std::uint32_t>(fifo.size()));
  for (const TaskId id : fifo) w.write_id(id);
  if (sched_.enabled) queue_.save(w);

  std::vector<NodeId> inflight_ids;
  inflight_ids.reserve(inflight_.size());
  for (const auto& [id, _] : inflight_) inflight_ids.push_back(id);
  std::sort(inflight_ids.begin(), inflight_ids.end());
  w.write_u32(static_cast<std::uint32_t>(inflight_ids.size()));
  for (const NodeId id : inflight_ids) {
    w.write_id(id);
    w.write_i32(inflight_.at(id));
  }

  w.write_u32(static_cast<std::uint32_t>(child_summaries_.size()));
  for (const auto& [_, summary] : child_summaries_) {
    cdr::Codec<protocol::ClusterSummary>::encode(w, summary);
  }
}

Status Grm::load(std::uint32_t version, cdr::Reader& r) {
  if (version < 1 || version > kSnapshotVersion) {
    return Status(ErrorCode::kInvalidArgument,
                  "grm snapshot version " + std::to_string(version) +
                      " unsupported");
  }
  const bool has_sched = version >= 2;

  // Decode everything into scratch state first: a truncated or corrupt
  // section must leave the live GRM untouched.
  const std::uint64_t next_reservation = r.read_u64();
  const Rng::State rng_state = cdr::Codec<Rng::State>::decode(r);
  const Rng::State backoff_state = cdr::Codec<Rng::State>::decode(r);

  std::map<std::int32_t, std::uint64_t> segment_epochs;
  const std::uint32_t n_epochs = r.read_u32();
  for (std::uint32_t i = 0; i < n_epochs && r.ok(); ++i) {
    const std::int32_t segment = r.read_i32();
    segment_epochs[segment] = r.read_u64();
  }

  std::unordered_map<NodeId, NodeRecord> nodes;
  const std::uint32_t n_nodes = r.read_u32();
  for (std::uint32_t i = 0; i < n_nodes && r.ok(); ++i) {
    NodeRecord record;
    record.status = cdr::Codec<protocol::NodeStatus>::decode(r);
    record.offer = r.read_id<services::OfferTag>();
    record.last_update = r.read_i64();
    const NodeId id = record.status.node;
    nodes.emplace(id, std::move(record));
  }

  std::map<AppId, AppRecord> apps;
  const std::uint32_t n_apps = r.read_u32();
  for (std::uint32_t i = 0; i < n_apps && r.ok(); ++i) {
    AppRecord app;
    app.spec = cdr::Codec<protocol::ApplicationSpec>::decode_base(r);
    if (has_sched) {
      app.spec.tenant = r.read_string();
      app.spec.bid_budget = r.read_f64();
      app.spec.bid_deadline = r.read_i64();
    }
    app.adopted_remote = r.read_bool();
    app.origin = cdr::Codec<orb::ObjectRef>::decode(r);
    app.outstanding = r.read_i32();
    app.running = r.read_i32();
    app.bsp_ready_fired = r.read_bool();
    app.failed = r.read_bool();
    const AppId id = app.spec.id;
    apps.emplace(id, std::move(app));
  }

  std::map<TaskId, TaskRecord> tasks;
  const std::uint32_t n_tasks = r.read_u32();
  for (std::uint32_t i = 0; i < n_tasks && r.ok(); ++i) {
    TaskRecord task;
    task.desc = cdr::Codec<protocol::TaskDescriptor>::decode(r);
    task.app = r.read_id<AppTag>();
    const std::uint8_t state = r.read_u8();
    if (r.ok() && state > static_cast<std::uint8_t>(TaskState::kFailed)) {
      return Status(ErrorCode::kInternal, "grm snapshot has bad task state");
    }
    task.state = static_cast<TaskState>(state);
    task.placement.node = r.read_id<NodeTag>();
    task.placement.lrm = cdr::Codec<orb::ObjectRef>::decode(r);
    task.waves = r.read_i32();
    task.evictions = r.read_i32();
    task.backoff = r.read_i64();
    task.eligible_at = r.read_i64();
    task.topology_segment = r.read_i32();
    task.remote_deadline = r.read_i64();
    if (has_sched) {
      task.tenant = r.read_string();
      task.deadline = r.read_i64();
    }
    const TaskId id = task.desc.id;
    tasks.emplace(id, std::move(task));
  }

  std::vector<TaskId> queue_ids;
  const std::uint32_t n_queue = r.read_u32();
  for (std::uint32_t i = 0; i < n_queue && r.ok(); ++i) {
    queue_ids.push_back(r.read_id<TaskTag>());
  }
  sched::FairQueue queue;
  queue.configure(sched_);
  queue.load(queue_ids, r, has_sched);

  std::unordered_map<NodeId, int> inflight;
  const std::uint32_t n_inflight = r.read_u32();
  for (std::uint32_t i = 0; i < n_inflight && r.ok(); ++i) {
    const NodeId id = r.read_id<NodeTag>();
    inflight[id] = r.read_i32();
  }

  std::map<ClusterId, protocol::ClusterSummary> child_summaries;
  const std::uint32_t n_summaries = r.read_u32();
  for (std::uint32_t i = 0; i < n_summaries && r.ok(); ++i) {
    protocol::ClusterSummary summary =
        cdr::Codec<protocol::ClusterSummary>::decode(r);
    const ClusterId id = summary.cluster;
    child_summaries[id] = std::move(summary);
  }

  if (!r.ok()) return Status(ErrorCode::kInternal, "truncated grm snapshot");
  if (nodes.size() != n_nodes || apps.size() != n_apps ||
      tasks.size() != n_tasks) {
    return Status(ErrorCode::kInternal, "duplicate key in grm snapshot");
  }
  // Cross-section consistency: every node record must reference an offer the
  // (already loaded) Trader actually holds, or scheduling would chase
  // dangling offer ids forever.
  for (const auto& [id, record] : nodes) {
    if (trader_.lookup(record.offer) == nullptr) {
      return Status(ErrorCode::kInternal,
                    "grm snapshot node " + to_string(id) +
                        " references unknown trader offer");
    }
  }

  // Commit. Cancel timers owned by the records being replaced first.
  for (auto& [_, task] : tasks_) task.remote_timeout.cancel();
  next_reservation_ = next_reservation;
  rng_.set_state(rng_state);
  backoff_rng_.set_state(backoff_state);
  segment_epochs_ = std::move(segment_epochs);
  nodes_ = std::move(nodes);
  apps_ = std::move(apps);
  tasks_ = std::move(tasks);
  queue_ = std::move(queue);
  inflight_ = std::move(inflight);
  child_summaries_ = std::move(child_summaries);
  preempting_.clear();
  tenant_registry_.clear_running();
  if (sched_.enabled) {
    for (const auto& [_, task] : tasks_) {
      if (task.state == TaskState::kRunning) {
        tenant_registry_.on_task_start(task.tenant);
      }
    }
  }

  // The loaded state stays dormant — no timers armed, no scheduler kick —
  // until recover_in_flight() runs at promotion. A warm standby installs
  // snapshots every period while the primary is still alive; arming timers
  // here would let a remote-adoption timeout fire on the standby and start
  // scheduling tasks the primary still owns.
  restored_dormant_ = true;
  return Status::ok();
}

void Grm::recover_in_flight() {
  restored_dormant_ = false;
  // Negotiation waves and reserve/execute callbacks died with the old
  // primary: every task frozen mid-negotiation goes back to pending so the
  // next scheduler pass (triggered by re-announced heartbeats) retries it.
  inflight_.clear();
  preempting_.clear();
  int recovered = 0;
  for (auto& [id, task] : tasks_) {
    if (task.state == TaskState::kNegotiating) {
      task.state = TaskState::kPending;
      queue_.push(id, task.tenant, task.deadline);
      ++recovered;
      continue;
    }
    // Tasks walking the wide-area hierarchy get their adoption timeout
    // back; an already-expired deadline fires immediately and requeues.
    if (task.state == TaskState::kRemote && task.remote_deadline > 0) {
      arm_remote_timeout(task);
    }
  }
  if (recovered > 0) {
    metrics_.counter("tasks_recovered_from_snapshot").add(recovered);
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

TaskState Grm::task_state(TaskId task) const {
  auto it = tasks_.find(task);
  return it == tasks_.end() ? TaskState::kFailed : it->second.state;
}

int Grm::pending_tasks() const {
  int n = 0;
  for (const auto& [_, task] : tasks_) {
    if (task.state == TaskState::kPending ||
        task.state == TaskState::kNegotiating) {
      ++n;
    }
  }
  return n;
}

int Grm::running_tasks() const {
  int n = 0;
  for (const auto& [_, task] : tasks_) {
    if (task.state == TaskState::kRunning) ++n;
  }
  return n;
}

std::optional<protocol::NodeStatus> Grm::node_view(NodeId node) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.status;
}

}  // namespace integrade::grm
