#include "baselines/boinc.hpp"

namespace integrade::baselines {

using protocol::TaskOutcome;

namespace {

class BoincServant final : public orb::SkeletonBase {
 public:
  explicit BoincServant(BoincMaster& master) {
    register_op<cdr::Empty, protocol::WorkReply>(
        "request_work",
        [&master](const cdr::Empty&) -> Result<protocol::WorkReply> {
          return master.handle_request_work();
        });
    register_op<protocol::TaskReport, cdr::Empty>(
        "report",
        [&master](const protocol::TaskReport& r) -> Result<cdr::Empty> {
          master.handle_report(r);
          return cdr::Empty{};
        });
  }
  [[nodiscard]] const char* type_id() const override {
    return "IDL:baselines/BoincMaster:1.0";
  }
};

}  // namespace

BoincMaster::BoincMaster(sim::Engine& engine, orb::Orb& orb)
    : engine_(engine), orb_(orb) {}

BoincMaster::~BoincMaster() { stop(); }

void BoincMaster::start() {
  started_ = true;
  self_ref_ = orb_.activate(std::make_shared<BoincServant>(*this));
}

void BoincMaster::stop() {
  if (!started_) return;
  started_ = false;
  orb_.deactivate(self_ref_.key);
}

bool BoincMaster::enqueue(const protocol::ApplicationSpec& spec) {
  if (spec.kind == protocol::AppKind::kBsp) {
    metrics_.counter("bsp_rejected").add();
    return false;
  }
  for (const auto& task : spec.tasks) queue_.push_back(task);
  outstanding_[spec.id] += static_cast<int>(spec.tasks.size());
  return true;
}

protocol::WorkReply BoincMaster::handle_request_work() {
  metrics_.counter("work_requests").add();
  protocol::WorkReply reply;
  if (queue_.empty()) return reply;
  reply.has_work = true;
  reply.task = queue_.front();
  queue_.pop_front();
  in_flight_[reply.task.id] = reply.task;
  metrics_.counter("units_dispatched").add();
  return reply;
}

void BoincMaster::handle_report(const protocol::TaskReport& report) {
  auto it = in_flight_.find(report.task);
  if (it == in_flight_.end()) return;

  if (report.outcome == TaskOutcome::kCompleted) {
    auto app_it = outstanding_.find(it->second.app);
    if (app_it != outstanding_.end()) --app_it->second;
    in_flight_.erase(it);
    ++completed_;
    metrics_.counter("units_completed").add();
    return;
  }
  // Eviction: back in the queue, from scratch (the unit changes machines;
  // any client-local checkpoint is lost).
  metrics_.counter("units_evicted").add();
  queue_.push_back(it->second);
  in_flight_.erase(it);
}

bool BoincMaster::app_done(AppId app) const {
  auto it = outstanding_.find(app);
  return it != outstanding_.end() && it->second == 0;
}

BoincWorker::BoincWorker(sim::Engine& engine, orb::Orb& orb, lrm::Lrm& lrm,
                         BoincOptions options)
    : engine_(engine), orb_(orb), lrm_(lrm), options_(options) {}

void BoincWorker::start(const orb::ObjectRef& master) {
  master_ = master;
  // Stagger the first poll so a lab of workers does not stampede.
  timer_.start(engine_, options_.poll_period, [this] { poll(); },
               options_.poll_period / 7 + 1);
}

void BoincWorker::stop() { timer_.stop(); }

void BoincWorker::poll() {
  if (fetching_ || lrm_.running_task_count() > 0) return;
  if (!lrm_.current_status().shareable) return;

  fetching_ = true;
  orb::call<cdr::Empty, protocol::WorkReply>(
      orb_, master_, "request_work", cdr::Empty{},
      [this](Result<protocol::WorkReply> reply) {
        fetching_ = false;
        if (!reply.is_ok() || !reply.value().has_work) return;
        // Run through the node's LRM in direct-execute mode, reporting
        // straight back to the master.
        protocol::ExecuteRequest execute;
        execute.reservation = ReservationId();  // direct
        execute.task = reply.value().task;
        execute.report_to = master_;
        const auto exec_reply = lrm_.handle_execute(execute);
        if (!exec_reply.accepted) {
          // Owner came back between poll and dispatch: hand the unit back.
          protocol::TaskReport report;
          report.task = execute.task.id;
          report.node = lrm_.node_id();
          report.outcome = TaskOutcome::kEvicted;
          report.detail = "worker no longer idle";
          orb::oneway(orb_, master_, "report", report);
        }
      },
      options_.call_timeout);
}

}  // namespace integrade::baselines
