// BOINC-like master-worker harvester (baseline for E5/E11).
//
// Models the SETI@home/BOINC architecture as the paper contrasts it (§2):
//   * a central master holds a queue of independent work units;
//   * workers PULL: each volunteer machine periodically asks for work when
//     its owner policy says it is idle (client-initiated, the opposite of
//     InteGrade's push scheduling);
//   * no inter-node communication — "lack of support for parallel
//     applications that demand communication between computing nodes":
//     BSP submissions are refused;
//   * an evicted unit goes back in the queue and restarts from zero
//     (real BOINC clients checkpoint locally; the local state is lost when
//     the unit moves to a different machine, which is the common case in a
//     lab setting — we model the move).
#pragma once

#include <deque>
#include <map>

#include "common/stats.hpp"
#include "lrm/lrm.hpp"
#include "orb/orb.hpp"
#include "protocol/messages.hpp"
#include "sim/engine.hpp"

namespace integrade::baselines {

struct BoincOptions {
  /// Worker poll period (BOINC clients poll on the order of minutes).
  SimDuration poll_period = 60 * kSecond;
  SimDuration call_timeout = 5 * kSecond;
};

class BoincMaster {
 public:
  BoincMaster(sim::Engine& engine, orb::Orb& orb);
  ~BoincMaster();
  BoincMaster(const BoincMaster&) = delete;
  BoincMaster& operator=(const BoincMaster&) = delete;

  void start();
  void stop();

  [[nodiscard]] const orb::ObjectRef& ref() const { return self_ref_; }
  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }

  /// Enqueue an application's tasks as work units. Returns false for BSP
  /// apps (unsupported by this architecture — the point of E11).
  bool enqueue(const protocol::ApplicationSpec& spec);

  [[nodiscard]] bool app_done(AppId app) const;
  [[nodiscard]] int units_completed() const { return completed_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  // ---- protocol entry points ----
  protocol::WorkReply handle_request_work();
  void handle_report(const protocol::TaskReport& report);

 private:
  sim::Engine& engine_;
  orb::Orb& orb_;
  orb::ObjectRef self_ref_;
  std::deque<protocol::TaskDescriptor> queue_;
  std::map<TaskId, protocol::TaskDescriptor> in_flight_;
  std::map<AppId, int> outstanding_;
  int completed_ = 0;
  bool started_ = false;
  MetricRegistry metrics_;
};

/// The per-node volunteer client: polls the master for work whenever its
/// node is idle per the owner's policy and runs at most one unit at a time
/// through the node's LRM in direct-execute mode.
class BoincWorker {
 public:
  BoincWorker(sim::Engine& engine, orb::Orb& orb, lrm::Lrm& lrm,
              BoincOptions options = {});

  void start(const orb::ObjectRef& master);
  void stop();

 private:
  void poll();

  sim::Engine& engine_;
  orb::Orb& orb_;
  lrm::Lrm& lrm_;
  BoincOptions options_;
  orb::ObjectRef master_;
  sim::PeriodicTimer timer_;
  bool fetching_ = false;
};

}  // namespace integrade::baselines
