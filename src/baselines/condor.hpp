// Condor-like matchmaking scheduler (baseline for E3/E5/E11).
//
// Models the scheduling style of Condor [LLM88] as the paper contrasts it:
//   * matchmaking over periodically advertised machine ClassAds — here the
//     same NodeStatus stream the GRM consumes, matched with the same
//     constraint language (ClassAds and the Trader constraint language are
//     close cousins);
//   * the scheduler TRUSTS its (possibly stale) view: no reservation
//     negotiation — it claims the machine by sending Execute directly and
//     discovers staleness only through the rejection;
//   * no usage-pattern forecasting;
//   * evicted jobs restart from scratch unless the app opted into
//     checkpointing by "re-linking" (checkpoint_period set), which Condor
//     supports for sequential jobs only.
//
// What it deliberately lacks versus the InteGrade GRM is exactly what E3/E5
// measure: negotiation that corrects stale hints, and LUPA forecasts that
// avoid soon-to-be-busy nodes.
#pragma once

#include <deque>
#include <map>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "orb/orb.hpp"
#include "protocol/messages.hpp"
#include "services/constraint.hpp"
#include "sim/engine.hpp"

namespace integrade::baselines {

struct CondorOptions {
  /// Machines not heard from within this window drop out of the pool.
  SimDuration ad_ttl = 150 * kSecond;
  SimDuration retry_backoff = 20 * kSecond;
  /// Rank expression over machine ads (Condor RANK); best first.
  std::string rank = "max exportable_mips";
  SimDuration call_timeout = 5 * kSecond;
  int max_tries_per_pass = 4;
};

class CondorScheduler {
 public:
  CondorScheduler(sim::Engine& engine, orb::Orb& orb, Rng rng,
                  CondorOptions options = {});
  ~CondorScheduler();
  CondorScheduler(const CondorScheduler&) = delete;
  CondorScheduler& operator=(const CondorScheduler&) = delete;

  void start();
  void stop();

  [[nodiscard]] const orb::ObjectRef& ref() const { return self_ref_; }
  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }

  // ---- protocol entry points ----
  void handle_update_status(const protocol::NodeStatus& status);
  protocol::SubmitReply handle_submit(const protocol::ApplicationSpec& spec);
  void handle_report(const protocol::TaskReport& report);

  [[nodiscard]] int completed_tasks() const { return completed_tasks_; }
  [[nodiscard]] bool app_done(AppId app) const;

 private:
  struct Job {
    protocol::TaskDescriptor desc;
    AppId app;
    bool running = false;
    bool done = false;
    int restarts = 0;
    SimTime eligible_at = 0;
  };

  struct Ad {
    protocol::NodeStatus status;
    SimTime last_update = 0;
    bool claimed = false;  // scheduler-side view of "I put a job there"
  };

  void kick(SimDuration delay = 0);
  void pass();
  void try_run(Job& job, int tries_left);

  sim::Engine& engine_;
  orb::Orb& orb_;
  Rng rng_;
  CondorOptions options_;

  orb::ObjectRef self_ref_;
  std::map<NodeId, Ad> ads_;
  std::map<TaskId, Job> jobs_;
  std::map<AppId, int> app_outstanding_;
  std::map<AppId, orb::ObjectRef> app_notify_;
  std::deque<TaskId> queue_;
  bool pass_scheduled_ = false;
  bool started_ = false;
  int completed_tasks_ = 0;

  MetricRegistry metrics_;
};

}  // namespace integrade::baselines
