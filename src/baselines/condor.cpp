#include "baselines/condor.hpp"

#include <algorithm>

#include "protocol/properties.hpp"

namespace integrade::baselines {

using protocol::TaskOutcome;

namespace {

class CondorServant final : public orb::SkeletonBase {
 public:
  explicit CondorServant(CondorScheduler& scheduler) {
    register_op<protocol::NodeStatus, cdr::Empty>(
        "update_status",
        [&scheduler](const protocol::NodeStatus& s) -> Result<cdr::Empty> {
          scheduler.handle_update_status(s);
          return cdr::Empty{};
        });
    register_op<protocol::ApplicationSpec, protocol::SubmitReply>(
        "submit", [&scheduler](const protocol::ApplicationSpec& spec)
                      -> Result<protocol::SubmitReply> {
          return scheduler.handle_submit(spec);
        });
    register_op<protocol::TaskReport, cdr::Empty>(
        "report",
        [&scheduler](const protocol::TaskReport& r) -> Result<cdr::Empty> {
          scheduler.handle_report(r);
          return cdr::Empty{};
        });
  }
  [[nodiscard]] const char* type_id() const override {
    return "IDL:baselines/Condor:1.0";
  }
};

}  // namespace

CondorScheduler::CondorScheduler(sim::Engine& engine, orb::Orb& orb, Rng rng,
                                 CondorOptions options)
    : engine_(engine), orb_(orb), rng_(rng), options_(options) {}

CondorScheduler::~CondorScheduler() { stop(); }

void CondorScheduler::start() {
  started_ = true;
  self_ref_ = orb_.activate(std::make_shared<CondorServant>(*this));
}

void CondorScheduler::stop() {
  if (!started_) return;
  started_ = false;
  orb_.deactivate(self_ref_.key);
}

void CondorScheduler::handle_update_status(const protocol::NodeStatus& status) {
  Ad& ad = ads_[status.node];
  ad.status = status;
  ad.last_update = engine_.now();
  ad.claimed = status.running_tasks > 0;
  if (status.shareable) kick();
}

protocol::SubmitReply CondorScheduler::handle_submit(
    const protocol::ApplicationSpec& spec) {
  protocol::SubmitReply reply;
  reply.app = spec.id;
  if (spec.kind == protocol::AppKind::kBsp) {
    // Condor's parallel support requires partially reserved (dedicated)
    // nodes (paper §2 / [Wri01]); plain cycle-scavenging pools refuse.
    reply.accepted = false;
    reply.reason = "parallel (BSP) applications unsupported on scavenged nodes";
    metrics_.counter("bsp_rejected").add();
    return reply;
  }
  for (const auto& task : spec.tasks) {
    Job job;
    job.desc = task;
    // Condor checkpoints sequential jobs only when re-linked; here the app
    // signals that by setting checkpoint_period, which we keep as-is.
    job.app = spec.id;
    jobs_[task.id] = std::move(job);
    queue_.push_back(task.id);
  }
  app_outstanding_[spec.id] += static_cast<int>(spec.tasks.size());
  app_notify_[spec.id] = spec.notify;
  kick();
  reply.accepted = true;
  return reply;
}

void CondorScheduler::kick(SimDuration delay) {
  if (pass_scheduled_ || !started_) return;
  pass_scheduled_ = true;
  engine_.schedule_after(delay, [this] {
    pass_scheduled_ = false;
    pass();
  });
}

void CondorScheduler::pass() {
  // Drop stale ads.
  const SimTime cutoff = engine_.now() - options_.ad_ttl;
  for (auto it = ads_.begin(); it != ads_.end();) {
    if (it->second.last_update < cutoff) {
      it = ads_.erase(it);
    } else {
      ++it;
    }
  }

  const std::size_t budget = queue_.size();
  std::deque<TaskId> deferred;
  SimTime next_eligible = kTimeNever;
  for (std::size_t i = 0; i < budget && !queue_.empty(); ++i) {
    const TaskId id = queue_.front();
    queue_.pop_front();
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.running || it->second.done) continue;
    if (it->second.eligible_at > engine_.now()) {
      deferred.push_back(id);
      next_eligible = std::min(next_eligible, it->second.eligible_at);
      continue;
    }
    try_run(it->second, options_.max_tries_per_pass);
  }
  for (TaskId id : deferred) queue_.push_back(id);
  if (next_eligible != kTimeNever) {
    kick(std::max<SimDuration>(1, next_eligible - engine_.now()));
  }
}

void CondorScheduler::try_run(Job& job, int tries_left) {
  if (tries_left <= 0) {
    job.eligible_at = engine_.now() + options_.retry_backoff;
    queue_.push_back(job.desc.id);
    kick(options_.retry_backoff);
    return;
  }

  // Matchmake: best unclaimed ad by RANK that satisfies requirements.
  auto rank = services::Preference::parse(options_.rank);
  std::string req_expr = "shareable == true and exportable_cpu > 0";
  if (job.desc.ram_needed > 0) {
    req_expr += " and free_ram_mb >= " + std::to_string(job.desc.ram_needed / kMiB);
  }
  if (!job.desc.binary_platform.empty()) {
    req_expr += " and '" + job.desc.binary_platform + "' in platforms";
  }
  auto constraint = services::Constraint::parse(req_expr);
  if (!constraint.is_ok() || !rank.is_ok()) return;

  std::vector<const Ad*> matches;
  std::vector<services::PropertySet> props;
  for (const auto& [_, ad] : ads_) {
    if (ad.claimed) continue;
    auto p = protocol::to_properties(ad.status);
    if (constraint.value().matches(p)) {
      matches.push_back(&ad);
      props.push_back(std::move(p));
    }
  }
  if (matches.empty()) {
    metrics_.counter("no_match").add();
    job.eligible_at = engine_.now() + options_.retry_backoff;
    queue_.push_back(job.desc.id);
    kick(options_.retry_backoff);
    return;
  }
  std::vector<const services::PropertySet*> prop_ptrs;
  prop_ptrs.reserve(props.size());
  for (const auto& p : props) prop_ptrs.push_back(&p);
  const auto order = rank.value().rank(prop_ptrs, &rng_);
  const Ad* best = matches[order.front()];

  // Claim by executing directly — trusting the ad (no negotiation).
  ads_[best->status.node].claimed = true;
  protocol::ExecuteRequest execute;
  execute.reservation = ReservationId();  // invalid => direct execute
  execute.task = job.desc;
  execute.report_to = self_ref_;

  const TaskId id = job.desc.id;
  const NodeId node = best->status.node;
  metrics_.counter("claims_attempted").add();
  orb::call<protocol::ExecuteRequest, protocol::ExecuteReply>(
      orb_, best->status.lrm, "execute", execute,
      [this, id, node, tries_left](Result<protocol::ExecuteReply> reply) {
        auto it = jobs_.find(id);
        if (it == jobs_.end()) return;
        if (!reply.is_ok() || !reply.value().accepted) {
          // The ad was stale — the defining failure mode of hint-trusting
          // schedulers (E3's "failure-if-trusted" column).
          metrics_.counter("stale_claims").add();
          auto ad_it = ads_.find(node);
          if (ad_it != ads_.end()) ad_it->second.status.shareable = false;
          try_run(it->second, tries_left - 1);
          return;
        }
        it->second.running = true;
        metrics_.counter("jobs_started").add();
      },
      options_.call_timeout);
}

void CondorScheduler::handle_report(const protocol::TaskReport& report) {
  auto it = jobs_.find(report.task);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  job.running = false;
  auto ad_it = ads_.find(report.node);
  if (ad_it != ads_.end()) ad_it->second.claimed = false;

  if (report.outcome == TaskOutcome::kCompleted) {
    job.done = true;
    ++completed_tasks_;
    metrics_.counter("jobs_completed").add();
    auto app_it = app_outstanding_.find(job.app);
    if (app_it != app_outstanding_.end() && --app_it->second == 0) {
      auto notify = app_notify_.find(job.app);
      if (notify != app_notify_.end() && notify->second.valid()) {
        protocol::AppEvent event;
        event.app = job.app;
        event.kind = protocol::AppEventKind::kAppCompleted;
        event.at = engine_.now();
        orb::oneway(orb_, notify->second, "app_event", event);
      }
    }
    return;
  }

  // Eviction: restart. Without the checkpoint library the job loses all
  // progress (Condor's default for non-relinked jobs).
  ++job.restarts;
  metrics_.counter("jobs_evicted").add();
  job.eligible_at = engine_.now() + 1 * kSecond;
  queue_.push_back(job.desc.id);
  kick(1 * kSecond);
}

bool CondorScheduler::app_done(AppId app) const {
  auto it = app_outstanding_.find(app);
  return it != app_outstanding_.end() && it->second == 0;
}

}  // namespace integrade::baselines
