#include "bsp/coordinator.hpp"

#include <algorithm>
#include <cassert>

#include "ckpt/store.hpp"
#include "common/log.hpp"

namespace integrade::bsp {

namespace {

class CoordinatorServant final : public orb::SkeletonBase {
 public:
  explicit CoordinatorServant(BspCoordinator& coordinator) {
    register_op<protocol::BspChunkDone, cdr::Empty>(
        "chunk_done",
        [&coordinator](const protocol::BspChunkDone& done) -> Result<cdr::Empty> {
          coordinator.handle_chunk_done(done);
          return cdr::Empty{};
        });
    // Data-plane completions. Registering extra operations is byte-invisible:
    // no wire traffic exists unless an agent sends these frames.
    register_op<protocol::CkptSaveDone, cdr::Empty>(
        "ckpt_saved",
        [&coordinator](const protocol::CkptSaveDone& done) -> Result<cdr::Empty> {
          coordinator.handle_ckpt_saved(done);
          return cdr::Empty{};
        });
    register_op<protocol::CkptRestoreDone, cdr::Empty>(
        "ckpt_restored",
        [&coordinator](const protocol::CkptRestoreDone& done)
            -> Result<cdr::Empty> {
          coordinator.handle_ckpt_restored(done);
          return cdr::Empty{};
        });
  }
  [[nodiscard]] const char* type_id() const override {
    return "IDL:integrade/BspCoordinator:1.0";
  }
};

}  // namespace

BspCoordinator::BspCoordinator(sim::Engine& engine, orb::Orb& orb, grm::Grm& grm,
                               ckpt::CheckpointRepository* repository,
                               sim::Network* network, BspOptions options)
    : engine_(engine),
      orb_(orb),
      grm_(grm),
      repository_(repository),
      network_(network),
      options_(options) {}

BspCoordinator::~BspCoordinator() { stop(); }

void BspCoordinator::start() {
  assert(!started_);
  started_ = true;
  self_ref_ = orb_.activate(std::make_shared<CoordinatorServant>(*this));
  grm_.set_bsp_handlers(
      [this](AppId app) { app_ready(app); },
      [this](AppId app, std::int32_t rank, const grm::Grm::Placement& p) {
        rank_placed(app, rank, p);
      },
      [this](AppId app, std::int32_t rank) { rank_lost(app, rank); },
      [this](AppId app) { app_cancelled(app); });
}

void BspCoordinator::stop() {
  if (!started_) return;
  started_ = false;
  orb_.deactivate(self_ref_.key);
}

const AppStats* BspCoordinator::stats(AppId app) const {
  auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : &it->second.stats;
}

void BspCoordinator::set_data_plane(
    ckpt::ChunkStore* repository_store, orb::ObjectRef repository_store_ref,
    std::function<orb::ObjectRef(NodeId)> agent_of, int replicate_k) {
  dp_store_ = repository_store;
  dp_store_ref_ = std::move(repository_store_ref);
  dp_agent_of_ = std::move(agent_of);
  dp_replicate_k_ = replicate_k;
}

std::vector<orb::ObjectRef> BspCoordinator::peer_agents(
    const App& app, std::int32_t rank, std::size_t limit) const {
  std::vector<orb::ObjectRef> peers;
  const auto own = app.placement[static_cast<std::size_t>(rank)].node;
  for (std::int32_t step = 1; step < app.processes(); ++step) {
    if (peers.size() >= limit) break;
    const auto other = static_cast<std::size_t>((rank + step) % app.processes());
    const NodeId node = app.placement[other].node;
    if (node == own || !app.rank_up[other]) continue;
    orb::ObjectRef agent = dp_agent_of_(node);
    if (!agent.valid()) continue;
    if (std::find(peers.begin(), peers.end(), agent) != peers.end()) continue;
    peers.push_back(std::move(agent));
  }
  return peers;
}

// ---------------------------------------------------------------------------
// GRM hooks
// ---------------------------------------------------------------------------

void BspCoordinator::app_ready(AppId app_id) {
  const auto* spec = grm_.app_spec(app_id);
  if (spec == nullptr) return;

  auto [it, inserted] = apps_.try_emplace(app_id);
  App& app = it->second;
  if (inserted) {
    app.spec = *spec;
    app.stats.started_at = engine_.now();
    app.committed_superstep = -1;
  }
  const std::int32_t processes = app.processes();
  app.placement.assign(static_cast<std::size_t>(processes), {});
  app.rank_up.assign(static_cast<std::size_t>(processes), false);
  for (std::int32_t rank = 0; rank < processes; ++rank) {
    const auto* placement =
        grm_.placement_of(app.task(rank).id);
    if (placement == nullptr) return;  // raced an eviction; GRM will re-fire
    app.placement[static_cast<std::size_t>(rank)] = *placement;
    app.rank_up[static_cast<std::size_t>(rank)] = true;
  }
  resume(app);
}

void BspCoordinator::rank_placed(AppId app_id, std::int32_t rank,
                                 const grm::Grm::Placement& placement) {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) return;
  App& app = it->second;
  if (rank < 0 || rank >= app.processes()) return;
  app.placement[static_cast<std::size_t>(rank)] = placement;
  app.rank_up[static_cast<std::size_t>(rank)] = true;
  if (app.phase == Phase::kSuspended && app.all_up()) resume(app);
}

void BspCoordinator::rank_lost(AppId app_id, std::int32_t rank) {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) return;
  App& app = it->second;
  if (rank < 0 || rank >= app.processes()) return;
  app.rank_up[static_cast<std::size_t>(rank)] = false;
  if (app.phase != Phase::kSuspended) suspend(app);
}

void BspCoordinator::suspend(App& app) {
  app.phase = Phase::kSuspended;
  ++app.epoch;  // in-flight chunk_dones / transfers become stale
  ++app.stats.rollbacks;
  app.awaiting.clear();
}

void BspCoordinator::resume(App& app) {
  // Roll back to the last complete recovery line. With checkpointing off
  // that line is "before superstep 0" — the whole execution replays, which
  // is exactly the cost E7 quantifies.
  const std::int64_t resume_from = app.committed_superstep + 1;
  if (app.superstep > resume_from) {
    app.stats.supersteps_replayed += app.superstep - resume_from;
  }
  app.superstep = resume_from;

  if (data_plane_enabled() && app.committed_superstep >= 0) {
    // Each rank re-materializes the committed recovery line through its
    // agent: chunks already in the local store cost nothing, missing ones
    // stream from peer replicas first, the repository as fallback. The
    // superstep cycle resumes only when every rank reports restored.
    app.phase = Phase::kRestoring;
    app.awaiting.clear();
    app.restore_started_at = engine_.now();
    const std::int64_t version = app.committed_superstep;
    for (std::int32_t rank = 0; rank < app.processes(); ++rank) {
      const protocol::CkptManifest* manifest =
          dp_store_->manifest(app.spec.id, rank, version);
      const orb::ObjectRef agent =
          dp_agent_of_(app.placement[static_cast<std::size_t>(rank)].node);
      if (manifest == nullptr || !agent.valid()) continue;
      app.awaiting.insert(rank);
      protocol::CkptRestoreRequest request;
      request.app = app.spec.id;
      request.rank = rank;
      request.version = version;
      request.epoch = app.epoch;
      request.manifest = *manifest;
      request.repository = dp_store_ref_;
      request.peers = peer_agents(app, rank, static_cast<std::size_t>(
                                                 app.processes()));
      request.notify = self_ref_;
      orb::oneway(orb_, agent, "ckpt_restore", request);
    }
    if (!app.awaiting.empty()) return;
    // No manifests to restore (e.g. the line predates the data plane):
    // fall through to the superstep cycle.
  } else if (app.committed_superstep >= 0 && network_ != nullptr) {
    // Legacy path: surviving and replacement ranks alike reload the whole
    // checkpoint image from the repository (bulk transfer billed on the
    // network, no completion tracking).
    for (std::int32_t rank = 0; rank < app.processes(); ++rank) {
      const auto& task = app.task(rank);
      const auto host = app.placement[static_cast<std::size_t>(rank)].lrm.host;
      if (task.checkpoint_bytes > 0 && network_->attached(self_ref_.host) &&
          network_->attached(host)) {
        network_->send(self_ref_.host, host, task.checkpoint_bytes, [] {});
      }
    }
  }
  begin_superstep(app);
}

void BspCoordinator::handle_ckpt_restored(const protocol::CkptRestoreDone& done) {
  auto it = apps_.find(done.app);
  if (it == apps_.end()) return;
  App& app = it->second;
  if (app.epoch != done.epoch || app.phase != Phase::kRestoring ||
      app.committed_superstep != done.version) {
    return;  // stale: suspended or rolled elsewhere meanwhile
  }
  app.stats.restore_bytes_pulled += done.bytes_pulled;
  app.stats.restore_chunks_local += done.chunks_local;
  app.stats.restore_chunks_from_peers += done.chunks_from_peers;
  app.stats.restore_chunks_from_repository += done.chunks_from_repository;
  if (!done.ok) {
    // The rank could not reassemble the image (all replicas unreachable).
    // It stays awaiting; a later suspend/resume retries.
    return;
  }
  app.awaiting.erase(done.rank);
  if (app.awaiting.empty()) {
    ++app.stats.restores;
    app.stats.restore_time_total += engine_.now() - app.restore_started_at;
    begin_superstep(app);
  }
}

// ---------------------------------------------------------------------------
// The superstep cycle
// ---------------------------------------------------------------------------

void BspCoordinator::begin_superstep(App& app) {
  const auto& shape = app.spec.tasks.front();
  if (app.superstep >= shape.bsp_supersteps) {
    finish(app);
    return;
  }
  app.phase = Phase::kComputing;
  app.awaiting.clear();

  const MInstr work_per_step =
      shape.bsp_supersteps > 0
          ? shape.work / static_cast<MInstr>(shape.bsp_supersteps)
          : shape.work;

  for (std::int32_t rank = 0; rank < app.processes(); ++rank) {
    app.awaiting.insert(rank);
    protocol::BspComputeRequest request;
    request.task = app.task(rank).id;
    request.rank = rank;
    request.superstep = app.superstep;
    request.work = work_per_step;
    request.notify = self_ref_;
    ++app.stats.chunks_issued;
    orb::oneway(orb_, app.placement[static_cast<std::size_t>(rank)].lrm,
                "bsp_compute", request);
  }
}

void BspCoordinator::handle_chunk_done(const protocol::BspChunkDone& done) {
  // Find the owning app by task: the done message carries rank + superstep.
  for (auto& [app_id, app] : apps_) {
    if (done.rank < 0 || done.rank >= app.processes()) continue;
    if (app.task(done.rank).id != done.task) continue;

    if (app.phase != Phase::kComputing || done.superstep != app.superstep) {
      return;  // stale: rolled back or already aborted this superstep
    }
    app.awaiting.erase(done.rank);
    if (app.awaiting.empty()) begin_exchange(app);
    return;
  }
}

void BspCoordinator::begin_exchange(App& app) {
  const auto& shape = app.spec.tasks.front();
  app.phase = Phase::kExchanging;

  if (shape.bsp_comm_bytes_per_step <= 0 || network_ == nullptr ||
      app.processes() < 2) {
    begin_barrier(app);
    return;
  }

  // Ring h-relation: rank i ships its superstep output to rank (i+1) mod P.
  // The barrier below cannot open until the slowest transfer lands.
  app.awaiting.clear();
  const std::uint64_t epoch = app.epoch;
  const std::int64_t superstep = app.superstep;
  for (std::int32_t rank = 0; rank < app.processes(); ++rank) {
    const std::int32_t next = (rank + 1) % app.processes();
    const auto src = app.placement[static_cast<std::size_t>(rank)].lrm.host;
    const auto dst = app.placement[static_cast<std::size_t>(next)].lrm.host;
    if (!network_->attached(src) || !network_->attached(dst)) continue;
    app.awaiting.insert(rank);
    const AppId app_id = app.spec.id;
    network_->send(src, dst, shape.bsp_comm_bytes_per_step,
                   [this, app_id, rank, epoch, superstep] {
                     auto it = apps_.find(app_id);
                     if (it == apps_.end()) return;
                     App& a = it->second;
                     if (a.epoch != epoch || a.phase != Phase::kExchanging ||
                         a.superstep != superstep) {
                       return;  // stale transfer from before a rollback
                     }
                     a.awaiting.erase(rank);
                     if (a.awaiting.empty()) begin_barrier(a);
                   });
  }
  if (app.awaiting.empty()) begin_barrier(app);
}

void BspCoordinator::begin_barrier(App& app) {
  app.phase = Phase::kBarrier;
  const std::uint64_t epoch = app.epoch;
  const AppId app_id = app.spec.id;
  engine_.schedule_after(options_.barrier_latency, [this, app_id, epoch] {
    auto it = apps_.find(app_id);
    if (it == apps_.end()) return;
    App& a = it->second;
    if (a.epoch != epoch || a.phase != Phase::kBarrier) return;
    after_barrier(a);
  });
}

void BspCoordinator::after_barrier(App& app) {
  ++app.stats.supersteps_completed;
  const auto& shape = app.spec.tasks.front();
  const std::int64_t finished = app.superstep;

  const bool checkpoint_due =
      shape.checkpoint_every > 0 &&
      ((finished + 1) % shape.checkpoint_every == 0 ||
       finished + 1 == shape.bsp_supersteps);
  if (checkpoint_due && repository_ != nullptr) {
    begin_checkpoint(app);
    return;
  }
  ++app.superstep;
  begin_superstep(app);
}

void BspCoordinator::begin_checkpoint(App& app) {
  app.phase = Phase::kCheckpointing;
  app.awaiting.clear();
  const std::uint64_t epoch = app.epoch;
  const std::int64_t superstep = app.superstep;
  const AppId app_id = app.spec.id;

  if (data_plane_enabled()) {
    // Content-addressed path: each rank's agent chunks its image and ships
    // only what the repository and its replica peers are missing. Completion
    // arrives as ckpt_saved frames.
    for (std::int32_t rank = 0; rank < app.processes(); ++rank) {
      const orb::ObjectRef agent =
          dp_agent_of_(app.placement[static_cast<std::size_t>(rank)].node);
      if (!agent.valid()) continue;
      app.awaiting.insert(rank);
      protocol::CkptSaveRequest request;
      request.app = app_id;
      request.rank = rank;
      request.version = superstep;
      request.epoch = epoch;
      request.image_bytes = app.task(rank).checkpoint_bytes;
      request.repository = dp_store_ref_;
      request.peers = peer_agents(app, rank,
                                  static_cast<std::size_t>(
                                      std::max(0, dp_replicate_k_)));
      request.notify = self_ref_;
      orb::oneway(orb_, agent, "ckpt_save", request);
    }
    if (app.awaiting.empty()) commit_checkpoint(app);
    return;
  }

  for (std::int32_t rank = 0; rank < app.processes(); ++rank) {
    const auto& task = app.task(rank);
    app.awaiting.insert(rank);
    auto commit = [this, app_id, rank, epoch, superstep] {
      auto it = apps_.find(app_id);
      if (it == apps_.end()) return;
      App& a = it->second;
      if (a.epoch != epoch || a.phase != Phase::kCheckpointing ||
          a.superstep != superstep) {
        return;
      }
      ckpt::Checkpoint checkpoint;
      checkpoint.app = app_id;
      checkpoint.rank = rank;
      checkpoint.version = superstep;
      checkpoint.created_at = engine_.now();
      // Portable state: the superstep index (the simulated app's real
      // payload size is billed on the network, not stored).
      checkpoint.state = cdr::encode_message(ckpt::SequentialState{
          static_cast<MInstr>(superstep + 1) *
          (a.spec.tasks.front().bsp_supersteps > 0
               ? a.spec.tasks.front().work /
                     a.spec.tasks.front().bsp_supersteps
               : 0.0)});
      (void)repository_->store(std::move(checkpoint));

      a.awaiting.erase(rank);
      if (a.awaiting.empty()) commit_checkpoint(a);
    };

    const auto host = app.placement[static_cast<std::size_t>(rank)].lrm.host;
    if (task.checkpoint_bytes > 0 && network_ != nullptr &&
        network_->attached(host) && network_->attached(self_ref_.host)) {
      network_->send(host, self_ref_.host, task.checkpoint_bytes,
                     std::move(commit));
    } else {
      engine_.schedule_after(0, std::move(commit));
    }
  }
}

void BspCoordinator::commit_checkpoint(App& app) {
  const std::int64_t superstep = app.superstep;
  app.committed_superstep = superstep;
  ++app.stats.checkpoints_committed;
  if (repository_ != nullptr) {
    // The committed line supersedes everything older — blob checkpoints and,
    // via the repository's embedded chunk store, manifests whose chunks the
    // refcounted GC can now reclaim.
    repository_->prune(app.spec.id, superstep);
  }
  if (data_plane_enabled()) {
    // Tell the provider-side stores too; their GC runs on the same sweep.
    std::vector<orb::ObjectRef> notified;
    protocol::CkptPrune prune;
    prune.app = app.spec.id;
    prune.keep_from = superstep;
    for (std::int32_t rank = 0; rank < app.processes(); ++rank) {
      orb::ObjectRef agent =
          dp_agent_of_(app.placement[static_cast<std::size_t>(rank)].node);
      if (!agent.valid() ||
          std::find(notified.begin(), notified.end(), agent) != notified.end()) {
        continue;
      }
      orb::oneway(orb_, agent, "ckpt_prune", prune);
      notified.push_back(std::move(agent));
    }
  }
  ++app.superstep;
  begin_superstep(app);
}

void BspCoordinator::handle_ckpt_saved(const protocol::CkptSaveDone& done) {
  auto it = apps_.find(done.app);
  if (it == apps_.end()) return;
  App& app = it->second;
  if (app.epoch != done.epoch || app.phase != Phase::kCheckpointing ||
      app.superstep != done.version) {
    return;  // stale: rolled back meanwhile
  }
  if (!done.ok) {
    // Replication failed; the rank stays awaiting so the checkpoint never
    // commits — the same stall semantics as a lost legacy transfer.
    return;
  }
  app.stats.ckpt_image_bytes += done.image_bytes;
  app.stats.ckpt_bytes_shipped += done.bytes_shipped;
  app.stats.ckpt_chunks_shipped += done.chunks_shipped;
  app.stats.ckpt_chunks_deduped += done.chunks_deduped;

  // Keep the blob record alongside the manifest: completeness tracking and
  // the sequential restore path read the repository, and the blob is tiny
  // (portable progress state, no image bytes).
  if (repository_ != nullptr) {
    ckpt::Checkpoint checkpoint;
    checkpoint.app = done.app;
    checkpoint.rank = done.rank;
    checkpoint.version = done.version;
    checkpoint.created_at = engine_.now();
    const auto& shape = app.spec.tasks.front();
    checkpoint.state = cdr::encode_message(ckpt::SequentialState{
        static_cast<MInstr>(done.version + 1) *
        (shape.bsp_supersteps > 0
             ? shape.work / static_cast<MInstr>(shape.bsp_supersteps)
             : 0.0)});
    (void)repository_->store(std::move(checkpoint));
  }

  app.awaiting.erase(done.rank);
  if (app.awaiting.empty()) commit_checkpoint(app);
}

void BspCoordinator::app_cancelled(AppId app_id) {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) return;
  ++it->second.epoch;  // stale every in-flight chunk/transfer
  if (repository_ != nullptr) repository_->drop_app(app_id);
  apps_.erase(it);
}

void BspCoordinator::finish(App& app) {
  if (app.stats.completed) return;
  app.stats.completed = true;
  app.stats.finished_at = engine_.now();
  if (repository_ != nullptr) repository_->drop_app(app.spec.id);
  grm_.complete_bsp_app(app.spec.id);
  if (on_complete_) on_complete_(app.spec.id, app.stats);
}

}  // namespace integrade::bsp
