// The BSP runtime (paper §3).
//
// "InteGrade adopts BSP as the model for parallel computation; imposing
// frequent synchronizations among application nodes." A BSP application is
// P processes advancing through supersteps; each superstep is
//
//     compute(w) -> exchange(h) -> barrier
//
// and the barrier is exactly where a *globally consistent* checkpoint is
// free: no messages are in flight, so saving every process's state yields a
// recovery line without message logging — the design answer to the paper's
// "what should [checkpointing] do with ongoing communications?" question.
//
// The coordinator runs on the Cluster Manager. It drives compute chunks on
// the ranks' LRMs, models the h-relation exchange on the simulated network
// (ring pattern), applies Valiant's barrier latency, ships checkpoint state
// to the repository every k supersteps, and — when the GRM reports a rank
// evicted — suspends the app, waits for the replacement placement, and
// rolls every rank back to the last complete checkpoint version.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "ckpt/repository.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "grm/grm.hpp"
#include "orb/orb.hpp"
#include "protocol/messages.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace integrade::bsp {

struct BspOptions {
  /// Valiant's `l`: fixed barrier synchronization latency per superstep.
  SimDuration barrier_latency = 5 * kMillisecond;
};

struct AppStats {
  SimTime started_at = 0;
  SimTime finished_at = kTimeNever;
  std::int64_t supersteps_completed = 0;
  std::int64_t chunks_issued = 0;
  int rollbacks = 0;
  std::int64_t supersteps_replayed = 0;  // lost to rollback
  int checkpoints_committed = 0;
  bool completed = false;

  // Checkpoint data-plane accounting (zero when the plane is disabled).
  std::int64_t ckpt_image_bytes = 0;     // logical bytes checkpointed
  std::int64_t ckpt_bytes_shipped = 0;   // payload bytes that crossed the wire
  std::int64_t ckpt_chunks_shipped = 0;
  std::int64_t ckpt_chunks_deduped = 0;
  int restores = 0;                      // completed restore rounds
  SimDuration restore_time_total = 0;    // resume() -> all ranks restored
  std::int64_t restore_bytes_pulled = 0;
  std::int64_t restore_chunks_local = 0;
  std::int64_t restore_chunks_from_peers = 0;
  std::int64_t restore_chunks_from_repository = 0;

  [[nodiscard]] SimDuration elapsed() const {
    return completed ? finished_at - started_at : -1;
  }
};

class BspCoordinator {
 public:
  BspCoordinator(sim::Engine& engine, orb::Orb& orb, grm::Grm& grm,
                 ckpt::CheckpointRepository* repository, sim::Network* network,
                 BspOptions options = {});
  ~BspCoordinator();
  BspCoordinator(const BspCoordinator&) = delete;
  BspCoordinator& operator=(const BspCoordinator&) = delete;

  /// Activates the chunk_done servant and hooks the GRM's BSP handlers.
  void start();
  void stop();

  void set_on_app_complete(std::function<void(AppId, const AppStats&)> callback) {
    on_complete_ = std::move(callback);
  }

  /// Route checkpoints through the content-addressed data plane instead of
  /// the legacy whole-image network bill. `repository_store` is the chunk
  /// store co-located with this coordinator (the manager's repository),
  /// `repository_store_ref` its wire ref for the agents, `agent_of` resolves
  /// a provider node to its CkptAgent ref, and `replicate_k` is how many
  /// peer stores each rank's checkpoint also lands on.
  void set_data_plane(ckpt::ChunkStore* repository_store,
                      orb::ObjectRef repository_store_ref,
                      std::function<orb::ObjectRef(NodeId)> agent_of,
                      int replicate_k);

  [[nodiscard]] const AppStats* stats(AppId app) const;

  // --- GRM hook entry points (public for tests) ---
  void app_ready(AppId app);
  void rank_placed(AppId app, std::int32_t rank, const grm::Grm::Placement& p);
  void rank_lost(AppId app, std::int32_t rank);
  void app_cancelled(AppId app);
  void handle_chunk_done(const protocol::BspChunkDone& done);
  void handle_ckpt_saved(const protocol::CkptSaveDone& done);
  void handle_ckpt_restored(const protocol::CkptRestoreDone& done);

 private:
  enum class Phase {
    kComputing,
    kExchanging,
    kBarrier,
    kCheckpointing,
    kRestoring,
    kSuspended,
  };

  struct App {
    protocol::ApplicationSpec spec;
    std::vector<grm::Grm::Placement> placement;  // by rank
    std::vector<bool> rank_up;
    Phase phase = Phase::kSuspended;
    std::int64_t superstep = 0;           // currently executing
    std::int64_t committed_superstep = -1; // last complete checkpoint line
    std::uint64_t epoch = 0;  // bumped on every suspend; stales old events
    std::set<std::int32_t> awaiting;      // ranks not yet done with phase
    SimTime restore_started_at = 0;       // kRestoring entry time
    AppStats stats;

    [[nodiscard]] std::int32_t processes() const {
      return static_cast<std::int32_t>(spec.tasks.size());
    }
    [[nodiscard]] const protocol::TaskDescriptor& task(std::int32_t rank) const {
      return spec.tasks[static_cast<std::size_t>(rank)];
    }
    [[nodiscard]] bool all_up() const {
      for (bool up : rank_up) {
        if (!up) return false;
      }
      return true;
    }
  };

  void begin_superstep(App& app);
  void begin_exchange(App& app);
  void begin_barrier(App& app);
  void after_barrier(App& app);
  void begin_checkpoint(App& app);
  void commit_checkpoint(App& app);
  void resume(App& app);
  void finish(App& app);
  void suspend(App& app);

  [[nodiscard]] bool data_plane_enabled() const {
    return dp_store_ != nullptr && static_cast<bool>(dp_agent_of_);
  }
  /// Agents of the nodes hosting the other ranks, nearest ranks first, no
  /// duplicates, excluding `rank`'s own node. The first replicate_k entries
  /// are the save-time replica set; restore stripes across all of them.
  [[nodiscard]] std::vector<orb::ObjectRef> peer_agents(const App& app,
                                                        std::int32_t rank,
                                                        std::size_t limit) const;

  sim::Engine& engine_;
  orb::Orb& orb_;
  grm::Grm& grm_;
  ckpt::CheckpointRepository* repository_;
  sim::Network* network_;
  BspOptions options_;

  orb::ObjectRef self_ref_;
  std::map<AppId, App> apps_;
  std::function<void(AppId, const AppStats&)> on_complete_;
  bool started_ = false;

  // Checkpoint data plane (null/empty = legacy whole-image path).
  ckpt::ChunkStore* dp_store_ = nullptr;
  orb::ObjectRef dp_store_ref_;
  std::function<orb::ObjectRef(NodeId)> dp_agent_of_;
  int dp_replicate_k_ = 0;
};

}  // namespace integrade::bsp
