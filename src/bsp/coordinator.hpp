// The BSP runtime (paper §3).
//
// "InteGrade adopts BSP as the model for parallel computation; imposing
// frequent synchronizations among application nodes." A BSP application is
// P processes advancing through supersteps; each superstep is
//
//     compute(w) -> exchange(h) -> barrier
//
// and the barrier is exactly where a *globally consistent* checkpoint is
// free: no messages are in flight, so saving every process's state yields a
// recovery line without message logging — the design answer to the paper's
// "what should [checkpointing] do with ongoing communications?" question.
//
// The coordinator runs on the Cluster Manager. It drives compute chunks on
// the ranks' LRMs, models the h-relation exchange on the simulated network
// (ring pattern), applies Valiant's barrier latency, ships checkpoint state
// to the repository every k supersteps, and — when the GRM reports a rank
// evicted — suspends the app, waits for the replacement placement, and
// rolls every rank back to the last complete checkpoint version.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "ckpt/repository.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "grm/grm.hpp"
#include "orb/orb.hpp"
#include "protocol/messages.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"

namespace integrade::bsp {

struct BspOptions {
  /// Valiant's `l`: fixed barrier synchronization latency per superstep.
  SimDuration barrier_latency = 5 * kMillisecond;
};

struct AppStats {
  SimTime started_at = 0;
  SimTime finished_at = kTimeNever;
  std::int64_t supersteps_completed = 0;
  std::int64_t chunks_issued = 0;
  int rollbacks = 0;
  std::int64_t supersteps_replayed = 0;  // lost to rollback
  int checkpoints_committed = 0;
  bool completed = false;

  [[nodiscard]] SimDuration elapsed() const {
    return completed ? finished_at - started_at : -1;
  }
};

class BspCoordinator {
 public:
  BspCoordinator(sim::Engine& engine, orb::Orb& orb, grm::Grm& grm,
                 ckpt::CheckpointRepository* repository, sim::Network* network,
                 BspOptions options = {});
  ~BspCoordinator();
  BspCoordinator(const BspCoordinator&) = delete;
  BspCoordinator& operator=(const BspCoordinator&) = delete;

  /// Activates the chunk_done servant and hooks the GRM's BSP handlers.
  void start();
  void stop();

  void set_on_app_complete(std::function<void(AppId, const AppStats&)> callback) {
    on_complete_ = std::move(callback);
  }

  [[nodiscard]] const AppStats* stats(AppId app) const;

  // --- GRM hook entry points (public for tests) ---
  void app_ready(AppId app);
  void rank_placed(AppId app, std::int32_t rank, const grm::Grm::Placement& p);
  void rank_lost(AppId app, std::int32_t rank);
  void app_cancelled(AppId app);
  void handle_chunk_done(const protocol::BspChunkDone& done);

 private:
  enum class Phase { kComputing, kExchanging, kBarrier, kCheckpointing, kSuspended };

  struct App {
    protocol::ApplicationSpec spec;
    std::vector<grm::Grm::Placement> placement;  // by rank
    std::vector<bool> rank_up;
    Phase phase = Phase::kSuspended;
    std::int64_t superstep = 0;           // currently executing
    std::int64_t committed_superstep = -1; // last complete checkpoint line
    std::uint64_t epoch = 0;  // bumped on every suspend; stales old events
    std::set<std::int32_t> awaiting;      // ranks not yet done with phase
    AppStats stats;

    [[nodiscard]] std::int32_t processes() const {
      return static_cast<std::int32_t>(spec.tasks.size());
    }
    [[nodiscard]] const protocol::TaskDescriptor& task(std::int32_t rank) const {
      return spec.tasks[static_cast<std::size_t>(rank)];
    }
    [[nodiscard]] bool all_up() const {
      for (bool up : rank_up) {
        if (!up) return false;
      }
      return true;
    }
  };

  void begin_superstep(App& app);
  void begin_exchange(App& app);
  void begin_barrier(App& app);
  void after_barrier(App& app);
  void begin_checkpoint(App& app);
  void resume(App& app);
  void finish(App& app);
  void suspend(App& app);

  sim::Engine& engine_;
  orb::Orb& orb_;
  grm::Grm& grm_;
  ckpt::CheckpointRepository* repository_;
  sim::Network* network_;
  BspOptions options_;

  orb::ObjectRef self_ref_;
  std::map<AppId, App> apps_;
  std::function<void(AppId, const AppStats&)> on_complete_;
  bool started_ = false;
};

}  // namespace integrade::bsp
