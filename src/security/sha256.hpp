// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The paper (§3) lists authentication and cryptography among InteGrade's
// security requirements. SHA-256 is the primitive beneath the HMAC message
// authentication used by the SecureTransport; it is implemented here rather
// than imported so the repository stays dependency-free. Verified against
// the FIPS/NIST test vectors in tests/security_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace integrade::security {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  /// Streaming interface.
  void update(const std::uint8_t* data, std::size_t size);
  void update(const std::vector<std::uint8_t>& data) {
    update(data.data(), data.size());
  }
  void update(const std::string& data) {
    update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

  /// Finalize and return the digest. The object must not be reused after.
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  static Digest hash(const std::uint8_t* data, std::size_t size);
  static Digest hash(const std::vector<std::uint8_t>& data) {
    return hash(data.data(), data.size());
  }
  static Digest hash(const std::string& data) {
    return hash(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finished_ = false;
};

/// Lowercase hex rendering (for vectors/tests/logs).
std::string to_hex(const Digest& digest);

}  // namespace integrade::security
