#include "security/sandbox.hpp"

#include <algorithm>

namespace integrade::security {

Status Sandbox::admit(const protocol::TaskDescriptor& task) const {
  if (policy_.max_work > 0 && task.work > policy_.max_work) {
    return Status(ErrorCode::kFailedPrecondition,
                  "sandbox: task work exceeds the node's limit");
  }
  if (policy_.max_ram > 0 && task.ram_needed > policy_.max_ram) {
    return Status(ErrorCode::kFailedPrecondition,
                  "sandbox: task RAM exceeds the node's limit");
  }
  if (policy_.max_io > 0 && task.input_bytes + task.output_bytes > policy_.max_io) {
    return Status(ErrorCode::kFailedPrecondition,
                  "sandbox: staged I/O exceeds the node's limit");
  }
  if (policy_.max_checkpoint > 0 && task.checkpoint_bytes > policy_.max_checkpoint) {
    return Status(ErrorCode::kFailedPrecondition,
                  "sandbox: checkpoint size exceeds the node's limit");
  }
  if (!policy_.allowed_platforms.empty() &&
      std::find(policy_.allowed_platforms.begin(),
                policy_.allowed_platforms.end(),
                task.binary_platform) == policy_.allowed_platforms.end()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "sandbox: platform '" + task.binary_platform +
                      "' is not in the node's allowlist");
  }
  return Status::ok();
}

}  // namespace integrade::security
