// Task sandbox policy.
//
// Paper §3: resource providers must be protected "from malicious code
// execution" — the paper points at Java and general sandboxing [GWTB96].
// In this reproduction grid tasks are simulated, so the sandbox's job is
// the admission half of that story: a per-node policy that bounds what an
// incoming TaskDescriptor may demand before the LRM agrees to host it.
// Everything a sandboxed task could abuse in this model — CPU time, RAM,
// disk staging volume, checkpoint volume — is bounded here.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "protocol/messages.hpp"

namespace integrade::security {

struct SandboxPolicy {
  /// Largest single task accepted, in MInstr (0 = unlimited).
  MInstr max_work = 0;
  /// RAM ceiling per task (0 = unlimited; the NCC cap still applies).
  Bytes max_ram = 0;
  /// Ceiling on staged input+output (0 = unlimited).
  Bytes max_io = 0;
  /// Ceiling on per-checkpoint state (0 = unlimited).
  Bytes max_checkpoint = 0;
  /// When non-empty, only these binary platforms are admitted (an
  /// allowlist, e.g. just "java" for owners who trust only the JVM
  /// sandbox, per the paper's Java suggestion).
  std::vector<std::string> allowed_platforms;
};

class Sandbox {
 public:
  Sandbox() = default;
  explicit Sandbox(SandboxPolicy policy) : policy_(std::move(policy)) {}

  [[nodiscard]] const SandboxPolicy& policy() const { return policy_; }

  /// Admission check: OK, or a kFailedPrecondition explaining the refusal.
  [[nodiscard]] Status admit(const protocol::TaskDescriptor& task) const;

 private:
  SandboxPolicy policy_;
};

}  // namespace integrade::security
