#include "security/hmac.hpp"

#include <cstring>

namespace integrade::security {

Key Key::from_passphrase(const std::string& passphrase) {
  const Digest digest = Sha256::hash(passphrase);
  return Key{std::vector<std::uint8_t>(digest.begin(), digest.end())};
}

Digest hmac_sha256(const Key& key, const std::uint8_t* data, std::size_t size) {
  constexpr std::size_t kBlock = 64;

  // Keys longer than the block are hashed; shorter ones zero-padded.
  std::uint8_t padded[kBlock] = {};
  if (key.bytes.size() > kBlock) {
    const Digest digest = Sha256::hash(key.bytes);
    std::memcpy(padded, digest.data(), digest.size());
  } else {
    std::memcpy(padded, key.bytes.data(), key.bytes.size());
  }

  std::uint8_t ipad[kBlock];
  std::uint8_t opad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = padded[i] ^ 0x36;
    opad[i] = padded[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad, kBlock);
  inner.update(data, size);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad, kBlock);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

bool digests_equal(const Digest& a, const Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace integrade::security
