#include "security/auth.hpp"

namespace integrade::security {

Digest SecureTransport::tag(orb::NodeAddress from,
                            const std::vector<std::uint8_t>& frame) const {
  // Bind the tag to the claimed sender so a valid frame cannot be replayed
  // under another node's address.
  std::vector<std::uint8_t> material;
  material.reserve(8 + frame.size());
  for (int i = 0; i < 8; ++i) {
    material.push_back(static_cast<std::uint8_t>(from >> (8 * i)));
  }
  material.insert(material.end(), frame.begin(), frame.end());
  return hmac_sha256(key_, material);
}

void SecureTransport::bind(orb::NodeAddress self, orb::FrameHandler handler) {
  inner_.bind(self, [this, handler = std::move(handler)](
                        orb::NodeAddress source,
                        const std::vector<std::uint8_t>& wire) {
    if (wire.size() < 32) {
      metrics_.counter("frames_rejected").add();
      return;
    }
    std::vector<std::uint8_t> frame(wire.begin(), wire.end() - 32);
    Digest received;
    std::copy(wire.end() - 32, wire.end(), received.begin());
    if (!digests_equal(received, tag(source, frame))) {
      metrics_.counter("frames_rejected").add();
      return;
    }
    metrics_.counter("frames_verified").add();
    handler(source, frame);
  });
}

void SecureTransport::unbind(orb::NodeAddress self) { inner_.unbind(self); }

void SecureTransport::send(orb::NodeAddress from, orb::NodeAddress to,
                           std::vector<std::uint8_t> frame) {
  const Digest mac = tag(from, frame);
  frame.insert(frame.end(), mac.begin(), mac.end());
  metrics_.counter("frames_signed").add();
  inner_.send(from, to, std::move(frame));
}

}  // namespace integrade::security
