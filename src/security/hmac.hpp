// HMAC-SHA256 (RFC 2104) message authentication.
//
// Authenticates every frame the SecureTransport moves: a grid node proves
// membership in its cluster's security realm by keying its frames with the
// realm secret. Verified against the RFC 4231 test vectors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "security/sha256.hpp"

namespace integrade::security {

/// A symmetric realm key. In a real deployment this comes from the cluster
/// administrator; here it is derived from a passphrase.
struct Key {
  std::vector<std::uint8_t> bytes;

  static Key from_passphrase(const std::string& passphrase);
  [[nodiscard]] bool empty() const { return bytes.empty(); }
  bool operator==(const Key&) const = default;
};

Digest hmac_sha256(const Key& key, const std::uint8_t* data, std::size_t size);

inline Digest hmac_sha256(const Key& key, const std::vector<std::uint8_t>& data) {
  return hmac_sha256(key, data.data(), data.size());
}

/// Constant-time comparison (no early exit on the first mismatching byte).
bool digests_equal(const Digest& a, const Digest& b);

}  // namespace integrade::security
