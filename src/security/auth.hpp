// SecureTransport: HMAC-authenticated framing.
//
// Paper §3: "The most important requirement is to ensure that users who
// decide to export [their] resources to the grid do not have [their]
// personal files and overall private information exposed or damaged in any
// way. To ensure that, we are investigating ... authentication, and
// cryptography."
//
// This decorator wraps any Transport: outgoing frames gain a trailer
// [ 32-byte HMAC-SHA256 over (sender || frame) ]; incoming frames are
// verified and stripped, and anything unauthenticated — tampered bytes,
// frames keyed to a different realm, frames from unkeyed senders — is
// dropped before it ever reaches the ORB. The ORB sees timeouts, exactly
// as it would for a lost datagram.
#pragma once

#include "common/stats.hpp"
#include "orb/transport.hpp"
#include "security/hmac.hpp"

namespace integrade::security {

class SecureTransport final : public orb::Transport {
 public:
  /// All endpoints bound through this instance share `realm_key` (one
  /// security realm per cluster, keyed by the cluster administrator).
  SecureTransport(orb::Transport& inner, Key realm_key)
      : inner_(inner), key_(std::move(realm_key)) {}

  void bind(orb::NodeAddress self, orb::FrameHandler handler) override;
  void unbind(orb::NodeAddress self) override;
  void send(orb::NodeAddress from, orb::NodeAddress to,
            std::vector<std::uint8_t> frame) override;

  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] std::int64_t rejected_frames() const {
    return metrics_.counter_value("frames_rejected");
  }

 private:
  [[nodiscard]] Digest tag(orb::NodeAddress from,
                           const std::vector<std::uint8_t>& frame) const;

  orb::Transport& inner_;
  Key key_;
  MetricRegistry metrics_;
};

}  // namespace integrade::security
