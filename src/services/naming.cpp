#include "services/naming.hpp"

#include <algorithm>

namespace integrade::services {

Status NamingService::bind(const std::string& path, const orb::ObjectRef& ref) {
  if (path.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty name");
  }
  auto [it, inserted] = bindings_.emplace(path, ref);
  (void)it;
  if (!inserted) {
    return Status(ErrorCode::kFailedPrecondition, "name already bound: " + path);
  }
  return Status::ok();
}

void NamingService::rebind(const std::string& path, const orb::ObjectRef& ref) {
  bindings_[path] = ref;
}

Result<orb::ObjectRef> NamingService::resolve(const std::string& path) const {
  auto it = bindings_.find(path);
  if (it == bindings_.end()) {
    return Status(ErrorCode::kNotFound, "unbound name: " + path);
  }
  return it->second;
}

Status NamingService::unbind(const std::string& path) {
  if (bindings_.erase(path) == 0) {
    return Status(ErrorCode::kNotFound, "unbound name: " + path);
  }
  return Status::ok();
}

std::vector<std::string> NamingService::list(const std::string& context) const {
  const std::string prefix = context.empty() ? "" : context + "/";
  std::vector<std::string> children;
  for (const auto& [path, _] : bindings_) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string rest = path.substr(prefix.size());
    const std::size_t slash = rest.find('/');
    if (slash != std::string::npos) rest.resize(slash);
    if (children.empty() || children.back() != rest) {
      if (std::find(children.begin(), children.end(), rest) == children.end()) {
        children.push_back(rest);
      }
    }
  }
  std::sort(children.begin(), children.end());
  return children;
}

}  // namespace integrade::services
