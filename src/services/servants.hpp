// CORBA servant wrappers for the Naming and Trading services.
//
// Inside a cluster the GRM reaches its Trader in-process, but the paper's
// architecture exports both services as CORBA objects ("InteGrade services
// are exported as CORBA IDL interfaces", §1) so that tools and remote
// clusters can resolve names and browse offers over the wire. These
// skeletons provide that surface on top of the library classes.
//
// Operations (all payloads CDR-encoded):
//   Naming : bind(NameBinding) -> BoolReply      rebind(NameBinding) -> Empty
//            resolve(NameRequest) -> ResolveReply unbind(NameRequest) -> BoolReply
//   Trader : export_offer(OfferExport) -> OfferIdReply
//            withdraw(OfferIdReply) -> BoolReply
//            modify(OfferExport w/ id) -> BoolReply
//            query(OfferQuery) -> OfferQueryReply
#pragma once

#include <memory>

#include "orb/orb.hpp"
#include "services/naming.hpp"
#include "services/trader.hpp"
#include "sim/engine.hpp"

namespace integrade::services {

// ---- wire structs ----

struct NameBinding {
  std::string path;
  orb::ObjectRef ref;
  bool operator==(const NameBinding&) const = default;
};

struct NameRequest {
  std::string path;
  bool operator==(const NameRequest&) const = default;
};

struct ResolveReply {
  bool found = false;
  orb::ObjectRef ref;
  bool operator==(const ResolveReply&) const = default;
};

struct BoolReply {
  bool ok = false;
  std::string detail;
  bool operator==(const BoolReply&) const = default;
};

struct OfferExport {
  OfferId id;  // invalid for export, set for modify
  std::string service_type;
  orb::ObjectRef provider;
  PropertySet properties;
  bool operator==(const OfferExport&) const = default;
};

struct OfferIdReply {
  OfferId id;
  bool operator==(const OfferIdReply&) const = default;
};

struct OfferQuery {
  std::string service_type;
  std::string constraint;
  std::string preference;
  std::int32_t max_matches = 0;
  bool operator==(const OfferQuery&) const = default;
};

struct OfferDescription {
  OfferId id;
  orb::ObjectRef provider;
  PropertySet properties;
  bool operator==(const OfferDescription&) const = default;
};

struct OfferQueryReply {
  bool ok = false;
  std::string error;
  std::vector<OfferDescription> offers;
  bool operator==(const OfferQueryReply&) const = default;
};

// ---- servants ----

class NamingServant final : public orb::SkeletonBase {
 public:
  explicit NamingServant(NamingService& naming);
  [[nodiscard]] const char* type_id() const override {
    return "IDL:integrade/CosNaming:1.0";
  }
};

class TraderServant final : public orb::SkeletonBase {
 public:
  /// `clock` supplies offer timestamps (may be null: timestamps stay 0).
  TraderServant(Trader& trader, sim::Engine* clock, Rng rng);
  [[nodiscard]] const char* type_id() const override {
    return "IDL:integrade/CosTrading:1.0";
  }

 private:
  Rng rng_;
};

}  // namespace integrade::services

// ---- codecs ----
namespace integrade::cdr {

template <> struct Codec<services::NameBinding> {
  static void encode(Writer& w, const services::NameBinding& v) {
    w.write_string(v.path);
    Codec<orb::ObjectRef>::encode(w, v.ref);
  }
  static services::NameBinding decode(Reader& r) {
    services::NameBinding v;
    v.path = r.read_string();
    v.ref = Codec<orb::ObjectRef>::decode(r);
    return v;
  }
};

template <> struct Codec<services::NameRequest> {
  static void encode(Writer& w, const services::NameRequest& v) {
    w.write_string(v.path);
  }
  static services::NameRequest decode(Reader& r) {
    return services::NameRequest{r.read_string()};
  }
};

template <> struct Codec<services::ResolveReply> {
  static void encode(Writer& w, const services::ResolveReply& v) {
    w.write_bool(v.found);
    Codec<orb::ObjectRef>::encode(w, v.ref);
  }
  static services::ResolveReply decode(Reader& r) {
    services::ResolveReply v;
    v.found = r.read_bool();
    v.ref = Codec<orb::ObjectRef>::decode(r);
    return v;
  }
};

template <> struct Codec<services::BoolReply> {
  static void encode(Writer& w, const services::BoolReply& v) {
    w.write_bool(v.ok);
    w.write_string(v.detail);
  }
  static services::BoolReply decode(Reader& r) {
    services::BoolReply v;
    v.ok = r.read_bool();
    v.detail = r.read_string();
    return v;
  }
};

template <> struct Codec<services::OfferExport> {
  static void encode(Writer& w, const services::OfferExport& v) {
    w.write_id(v.id);
    w.write_string(v.service_type);
    Codec<orb::ObjectRef>::encode(w, v.provider);
    Codec<services::PropertySet>::encode(w, v.properties);
  }
  static services::OfferExport decode(Reader& r) {
    services::OfferExport v;
    v.id = r.read_id<services::OfferTag>();
    v.service_type = r.read_string();
    v.provider = Codec<orb::ObjectRef>::decode(r);
    v.properties = Codec<services::PropertySet>::decode(r);
    return v;
  }
};

template <> struct Codec<services::OfferIdReply> {
  static void encode(Writer& w, const services::OfferIdReply& v) {
    w.write_id(v.id);
  }
  static services::OfferIdReply decode(Reader& r) {
    return services::OfferIdReply{r.read_id<services::OfferTag>()};
  }
};

template <> struct Codec<services::OfferQuery> {
  static void encode(Writer& w, const services::OfferQuery& v) {
    w.write_string(v.service_type);
    w.write_string(v.constraint);
    w.write_string(v.preference);
    w.write_i32(v.max_matches);
  }
  static services::OfferQuery decode(Reader& r) {
    services::OfferQuery v;
    v.service_type = r.read_string();
    v.constraint = r.read_string();
    v.preference = r.read_string();
    v.max_matches = r.read_i32();
    return v;
  }
};

template <> struct Codec<services::OfferDescription> {
  static void encode(Writer& w, const services::OfferDescription& v) {
    w.write_id(v.id);
    Codec<orb::ObjectRef>::encode(w, v.provider);
    Codec<services::PropertySet>::encode(w, v.properties);
  }
  static services::OfferDescription decode(Reader& r) {
    services::OfferDescription v;
    v.id = r.read_id<services::OfferTag>();
    v.provider = Codec<orb::ObjectRef>::decode(r);
    v.properties = Codec<services::PropertySet>::decode(r);
    return v;
  }
};

template <> struct Codec<services::OfferQueryReply> {
  static void encode(Writer& w, const services::OfferQueryReply& v) {
    w.write_bool(v.ok);
    w.write_string(v.error);
    encode_sequence(w, v.offers);
  }
  static services::OfferQueryReply decode(Reader& r) {
    services::OfferQueryReply v;
    v.ok = r.read_bool();
    v.error = r.read_string();
    v.offers = decode_sequence<services::OfferDescription>(r);
    return v;
  }
};

}  // namespace integrade::cdr
