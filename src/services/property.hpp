// Property sets: the currency of the Trading service.
//
// A service offer (here: a node advertising resources to the GRM) is a bag
// of named typed values — `cpu_mips = 1400`, `os = 'linux'`,
// `platforms = ['linux-x86', 'java']`. Constraint expressions evaluate
// against a PropertySet; preferences rank offers by an expression over it.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cdr/value.hpp"

namespace integrade::services {

class PropertySet {
 public:
  PropertySet() = default;
  PropertySet(std::initializer_list<std::pair<const std::string, cdr::Value>> init)
      : props_(init) {}

  void set(const std::string& name, cdr::Value value) {
    props_[name] = std::move(value);
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return props_.contains(name);
  }

  /// Null value when absent (constraint evaluation treats null as undefined).
  [[nodiscard]] const cdr::Value& get(const std::string& name) const;

  [[nodiscard]] std::optional<std::int64_t> get_int(const std::string& name) const;
  [[nodiscard]] std::optional<double> get_real(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> get_string(const std::string& name) const;
  [[nodiscard]] std::optional<bool> get_bool(const std::string& name) const;

  void erase(const std::string& name) { props_.erase(name); }
  [[nodiscard]] std::size_t size() const { return props_.size(); }
  [[nodiscard]] bool empty() const { return props_.empty(); }

  [[nodiscard]] const std::map<std::string, cdr::Value>& entries() const {
    return props_;
  }

  /// Merge `other` into this set, overwriting duplicates.
  void merge(const PropertySet& other);

  [[nodiscard]] std::string to_string() const;

  bool operator==(const PropertySet&) const = default;

 private:
  std::map<std::string, cdr::Value> props_;
};

}  // namespace integrade::services

namespace integrade::cdr {

template <>
struct Codec<services::PropertySet> {
  static void encode(Writer& w, const services::PropertySet& ps);
  static services::PropertySet decode(Reader& r);
};

}  // namespace integrade::cdr
