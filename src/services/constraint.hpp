// The Trader constraint & preference language.
//
// The GRM stores LRM resource offers in a Trading service and selects
// candidate nodes by evaluating constraint expressions against offer
// properties (paper §5: "The GRM uses the JacORB Trader to store the
// information it receives from the LRMs"). This is a faithful subset of the
// OMG Trading Object Service constraint language:
//
//   constraint  := bool_expr
//   bool_expr   := bool_term { "or" bool_term }
//   bool_term   := bool_fact { "and" bool_fact }
//   bool_fact   := "not" bool_fact | comparison
//   comparison  := additive [ ("==" | "!=" | "<" | "<=" | ">" | ">=" |
//                              "~" | "in") additive ]
//   additive    := mult { ("+" | "-") mult }
//   mult        := unary { ("*" | "/") unary }
//   unary       := "-" unary | "exist" ident | primary
//   primary     := number | string | "true" | "false" | ident | "(" bool_expr ")"
//
//   `~`  is substring match (left operand contained in right? No — CORBA's
//        `str ~ prop` means "prop contains str"; here `a ~ b` is true when
//        string a occurs within string b).
//   `in` is membership of a value in a list-valued property.
//
// Preferences rank matching offers:
//   preference := "max" expr | "min" expr | "with" bool_expr | "random" | "first"
//
// Missing properties make a comparison *undefined*; undefined propagates to
// false at the boolean level (an offer lacking `cpu_mips` never matches
// `cpu_mips > 500`, and never matches `not (cpu_mips > 500)` either, unless
// guarded with `exist`). This matches the OMG semantics and is
// property-tested in tests/constraint_test.cpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cdr/value.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "services/property.hpp"

namespace integrade::services {

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------
enum class TokenKind {
  kEnd,
  kNumber,      // integer or real literal
  kString,      // 'quoted'
  kIdent,       // property name
  kTrue, kFalse,
  kAnd, kOr, kNot, kExist, kIn,
  kEq, kNe, kLt, kLe, kGt, kGe, kTilde,
  kPlus, kMinus, kStar, kSlash,
  kLParen, kRParen,
  kMax, kMin, kWith, kRandom, kFirst,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // raw text for idents/strings
  double number = 0.0;  // numeric literals
  bool is_integer = false;
  std::size_t offset = 0;  // for error messages
};

/// Tokenize a constraint/preference source string.
Result<std::vector<Token>> tokenize(const std::string& source);

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------
struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,   // value
  kProperty,  // name
  kUnary,     // op: Neg | Not | Exist
  kBinary,    // op: And..Div
};

enum class UnaryOp { kNeg, kNot, kExist };
enum class BinaryOp {
  kAnd, kOr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kSubstr,  // ~
  kIn,
  kAdd, kSub, kMul, kDiv,
};

struct Expr {
  ExprKind kind;
  cdr::Value literal;       // kLiteral
  std::string property;     // kProperty, and kUnary(kExist)
  UnaryOp unary_op{};       // kUnary
  BinaryOp binary_op{};     // kBinary
  ExprPtr lhs;              // kUnary operand / kBinary lhs
  ExprPtr rhs;              // kBinary rhs

  [[nodiscard]] std::string to_string() const;
};

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// Three-valued evaluation result: a Value, or "undefined" (missing property
/// or type mismatch). Undefined is distinct from an error: errors are
/// malformed expressions and are caught at parse time.
struct EvalResult {
  bool defined = false;
  cdr::Value value;

  static EvalResult undef() { return {}; }
  static EvalResult of(cdr::Value v) { return {true, std::move(v)}; }
};

EvalResult evaluate(const Expr& expr, const PropertySet& props);

/// Evaluate as a match predicate: undefined and non-boolean results are
/// "no match", per the OMG trader rules.
bool matches(const Expr& expr, const PropertySet& props);

/// A parsed, reusable constraint. Parsing happens once per query; evaluation
/// runs once per offer — the asymmetry the GRM relies on.
class Constraint {
 public:
  static Result<Constraint> parse(const std::string& source);

  /// "TRUE" constraint that matches every offer.
  static Constraint always();

  [[nodiscard]] bool matches(const PropertySet& props) const;
  [[nodiscard]] const std::string& source() const { return source_; }

  Constraint(Constraint&&) = default;
  Constraint& operator=(Constraint&&) = default;

 private:
  Constraint(std::string source, ExprPtr root);
  std::string source_;
  std::shared_ptr<const Expr> root_;  // shared: Constraint must be copyable
 public:
  Constraint(const Constraint&) = default;
  Constraint& operator=(const Constraint&) = default;
};

/// A parsed preference: orders offers. kMax/kMin order by a numeric
/// expression (offers where it is undefined sort last); kWith puts matching
/// offers first; kRandom shuffles; kFirst keeps discovery order.
class Preference {
 public:
  enum class Kind { kMax, kMin, kWith, kRandom, kFirst };

  static Result<Preference> parse(const std::string& source);
  static Preference first();

  [[nodiscard]] Kind kind() const { return kind_; }

  /// Stable-sort indices [0, sets.size()) into preference order.
  [[nodiscard]] std::vector<std::size_t> rank(
      const std::vector<const PropertySet*>& sets, Rng* rng = nullptr) const;

  /// First `k` indices of `rank`'s order without sorting the full set
  /// (partial_sort, O(n log k)); `k == 0` or `k >= sets.size()` degrades to
  /// a full rank. Output is bit-identical to `rank(sets, rng)` truncated to
  /// k. kRandom consumes the same Rng draws regardless of k so seeded
  /// experiments replay identically whichever overload ran.
  [[nodiscard]] std::vector<std::size_t> top(
      const std::vector<const PropertySet*>& sets, std::size_t k,
      Rng* rng = nullptr) const;

 private:
  Preference(Kind kind, std::shared_ptr<const Expr> expr)
      : kind_(kind), expr_(std::move(expr)) {}
  Kind kind_;
  std::shared_ptr<const Expr> expr_;
};

}  // namespace integrade::services
