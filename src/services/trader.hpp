// Trading Object Service.
//
// The GRM's information repository (paper §5: node status received from the
// LRMs is stored in the Trader). Exporters register *service offers* — a
// service type, the exporter's object reference, and a property set;
// importers query with a constraint expression and a preference that ranks
// the matches. Offers are modified in place by the Information Update
// Protocol as fresh LRM status arrives.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "orb/ior.hpp"
#include "services/constraint.hpp"
#include "services/property.hpp"

namespace integrade::services {

struct OfferTag {};
using OfferId = Id<OfferTag>;

struct ServiceOffer {
  OfferId id;
  std::string service_type;
  orb::ObjectRef provider;
  PropertySet properties;
  SimTime exported_at = 0;
  SimTime modified_at = 0;
};

class Trader {
 public:
  /// Register an offer; returns its id for later modify/withdraw.
  OfferId export_offer(const std::string& service_type,
                       const orb::ObjectRef& provider, PropertySet properties,
                       SimTime now = 0);

  Status withdraw(OfferId id);

  /// Replace the offer's property set (the common case: a full status
  /// refresh from an LRM).
  Status modify(OfferId id, PropertySet properties, SimTime now = 0);

  [[nodiscard]] const ServiceOffer* lookup(OfferId id) const;

  /// Find the offer exported by `provider` for `service_type`, if any.
  [[nodiscard]] const ServiceOffer* find_by_provider(
      const std::string& service_type, const orb::ObjectRef& provider) const;

  /// Query: parse `constraint` and `preference`, filter offers of
  /// `service_type`, rank, and return up to `max_matches` (0 = unlimited).
  /// Parse errors return InvalidArgument.
  Result<std::vector<const ServiceOffer*>> query(const std::string& service_type,
                                                 const std::string& constraint,
                                                 const std::string& preference,
                                                 std::size_t max_matches = 0,
                                                 Rng* rng = nullptr) const;

  /// Pre-compiled variant, used by the GRM on its scheduling fast path.
  [[nodiscard]] std::vector<const ServiceOffer*> query_compiled(
      const std::string& service_type, const Constraint& constraint,
      const Preference& preference, std::size_t max_matches = 0,
      Rng* rng = nullptr) const;

  [[nodiscard]] std::size_t offer_count() const { return offers_.size(); }
  [[nodiscard]] std::size_t offer_count(const std::string& service_type) const;

  /// Iterate all offers of a type (unranked), for maintenance sweeps.
  [[nodiscard]] std::vector<const ServiceOffer*> offers_of_type(
      const std::string& service_type) const;

 private:
  std::map<OfferId, ServiceOffer> offers_;
  std::uint64_t next_id_ = 1;
};

}  // namespace integrade::services
