// Trading Object Service.
//
// The GRM's information repository (paper §5: node status received from the
// LRMs is stored in the Trader). Exporters register *service offers* — a
// service type, the exporter's object reference, and a property set;
// importers query with a constraint expression and a preference that ranks
// the matches. Offers are modified in place by the Information Update
// Protocol as fresh LRM status arrives.
//
// Hot-path structure: offers live in an id-keyed map (stable addresses), and
// two secondary indexes keep query traffic off the full map — a per-type
// bucket of offer pointers in id order (so type-scoped scans touch only that
// type's offers) and a (service_type, provider) hash index for the
// Information Update Protocol's "which offer is this LRM's?" lookup. String
// queries additionally memoize their compiled constraint/preference in an
// LRU keyed by source text, since schedulers re-issue the same handful of
// expressions every round.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/lru.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "orb/ior.hpp"
#include "services/constraint.hpp"
#include "services/property.hpp"

namespace integrade::services {

struct OfferTag {};
using OfferId = Id<OfferTag>;

struct ServiceOffer {
  OfferId id;
  std::string service_type;
  orb::ObjectRef provider;
  PropertySet properties;
  SimTime exported_at = 0;
  SimTime modified_at = 0;
  /// Property refreshes since export (modify/refresh calls). Serialized from
  /// snapshot format v2 on; v1 images load with 0.
  std::int64_t refreshes = 0;
};

class Trader {
 public:
  /// Register an offer; returns its id for later modify/withdraw.
  OfferId export_offer(const std::string& service_type,
                       const orb::ObjectRef& provider, PropertySet properties,
                       SimTime now = 0);

  Status withdraw(OfferId id);

  /// Replace the offer's property set (the common case: a full status
  /// refresh from an LRM).
  Status modify(OfferId id, PropertySet properties, SimTime now = 0);

  /// In-place property refresh: apply `fn` to the offer's existing property
  /// set instead of building a replacement. The Information Update Protocol
  /// uses this so a heartbeat reuses the offer's map nodes and key strings
  /// rather than reallocating the whole set every period.
  template <class Fn>
  Status refresh(OfferId id, Fn&& fn, SimTime now = 0) {
    auto it = offers_.find(id);
    if (it == offers_.end()) {
      return Status(ErrorCode::kNotFound, "no offer " + to_string(id));
    }
    fn(it->second.properties);
    it->second.modified_at = now;
    ++it->second.refreshes;
    return Status::ok();
  }

  [[nodiscard]] const ServiceOffer* lookup(OfferId id) const;

  /// Find the offer exported by `provider` for `service_type`, if any.
  /// O(1) via the provider index; multiple offers from one provider resolve
  /// to the earliest-exported one, as the pre-index linear scan did.
  [[nodiscard]] const ServiceOffer* find_by_provider(
      const std::string& service_type, const orb::ObjectRef& provider) const;

  /// Query: parse `constraint` and `preference` (memoized in an LRU keyed by
  /// source string), filter offers of `service_type`, rank, and return up to
  /// `max_matches` (0 = unlimited). Parse errors return InvalidArgument.
  Result<std::vector<const ServiceOffer*>> query(const std::string& service_type,
                                                 const std::string& constraint,
                                                 const std::string& preference,
                                                 std::size_t max_matches = 0,
                                                 Rng* rng = nullptr) const;

  /// Pre-compiled variant, used by the GRM on its scheduling fast path.
  /// Scans only the type's bucket; `max_matches > 0` ranks via top-k
  /// selection instead of sorting every match, and with the `first`
  /// preference additionally stops scanning at the max_matches-th match.
  /// Results are byte-identical to the linear reference below for every
  /// input.
  [[nodiscard]] std::vector<const ServiceOffer*> query_compiled(
      const std::string& service_type, const Constraint& constraint,
      const Preference& preference, std::size_t max_matches = 0,
      Rng* rng = nullptr) const;

  /// Reference implementation: full-map scan + full rank, exactly the
  /// pre-index code path. Kept for the equivalence tests and the
  /// bench_trader before/after comparison — not for production callers.
  [[nodiscard]] std::vector<const ServiceOffer*> query_linear(
      const std::string& service_type, const Constraint& constraint,
      const Preference& preference, std::size_t max_matches = 0,
      Rng* rng = nullptr) const;

  [[nodiscard]] std::size_t offer_count() const { return offers_.size(); }
  [[nodiscard]] std::size_t offer_count(const std::string& service_type) const;

  /// Iterate all offers of a type (unranked, id order), for maintenance
  /// sweeps.
  [[nodiscard]] std::vector<const ServiceOffer*> offers_of_type(
      const std::string& service_type) const;

  /// Resize the compiled-expression memo (both caches), discarding every
  /// cached entry. Tests shrink it to 1 so that any compiled expression held
  /// by pointer across a nested insertion becomes an immediate
  /// use-after-evict instead of a latent one.
  void set_compiled_cache_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t compiled_cache_capacity() const {
    return constraint_cache_.capacity();
  }

  /// Verify both secondary indexes against the offer map: every offer in
  /// exactly one type bucket (id-ascending), every provider entry backed by
  /// live offers, no strays. Used by tests and debug builds; returns the
  /// first violation found.
  [[nodiscard]] Status check_invariants() const;

  /// Control-plane snapshot format version for the "trader" section.
  /// v1: id, service_type, provider, properties, exported_at, modified_at.
  /// v2: v1 fields + refreshes (i64) per offer.
  static constexpr std::uint32_t kSnapshotVersion = 2;

  /// Serialize offers + the id counter (current format, v2). The secondary
  /// indexes are derived state rebuilt on load, and the compiled-expression
  /// caches are non-observable memos cleared on load — neither is
  /// serialized, so save→load→save is byte-identical by construction.
  void save(cdr::Writer& w) const;

  /// Replace the trader's state from a snapshot section. Accepts the current
  /// format and migrates v1 images (refreshes defaults to 0). Decodes into
  /// scratch and validates before committing: on any error the trader is
  /// left untouched. On success both indexes are rebuilt and verified.
  Status load(std::uint32_t version, cdr::Reader& r);

 private:
  struct ProviderKey {
    std::string service_type;
    orb::ObjectRef provider;
    bool operator==(const ProviderKey&) const = default;
  };
  struct ProviderKeyHash {
    std::size_t operator()(const ProviderKey& k) const noexcept;
  };

  void index_offer(const ServiceOffer& offer);
  void unindex_offer(const ServiceOffer& offer);

  std::map<OfferId, ServiceOffer> offers_;  // node-based: stable addresses
  /// Offers of each type, id-ascending (= export order; ids are monotonic).
  std::unordered_map<std::string, std::vector<const ServiceOffer*>> by_type_;
  /// Offer ids per (service_type, provider), id-ascending.
  std::unordered_map<ProviderKey, std::vector<OfferId>, ProviderKeyHash>
      by_provider_;
  std::uint64_t next_id_ = 1;

  /// Compiled-expression memo for string queries (mutable: caching is not
  /// observable through the const interface).
  mutable LruCache<std::string, Constraint> constraint_cache_{128};
  mutable LruCache<std::string, Preference> preference_cache_{128};
};

}  // namespace integrade::services
