// Naming Service.
//
// A hierarchical name-to-object-reference registry, the CORBA CosNaming
// analogue InteGrade components use to find each other at bootstrap time
// ("clusters/lab1/grm", "clusters/lab1/gupa", ...). Paths are '/'-separated;
// intermediate contexts are implicit.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "orb/ior.hpp"

namespace integrade::services {

class NamingService {
 public:
  /// Bind `path` to `ref`; fails with kFailedPrecondition if already bound.
  Status bind(const std::string& path, const orb::ObjectRef& ref);

  /// Bind or replace.
  void rebind(const std::string& path, const orb::ObjectRef& ref);

  [[nodiscard]] Result<orb::ObjectRef> resolve(const std::string& path) const;

  Status unbind(const std::string& path);

  /// Names bound directly under `context` (no trailing '/'). An empty
  /// context lists the roots. Returns de-duplicated child component names.
  [[nodiscard]] std::vector<std::string> list(const std::string& context) const;

  [[nodiscard]] std::size_t size() const { return bindings_.size(); }

 private:
  std::map<std::string, orb::ObjectRef> bindings_;
};

}  // namespace integrade::services
