#include "services/property.hpp"

#include <sstream>

namespace integrade::services {

const cdr::Value& PropertySet::get(const std::string& name) const {
  static const cdr::Value kNull;
  auto it = props_.find(name);
  return it == props_.end() ? kNull : it->second;
}

std::optional<std::int64_t> PropertySet::get_int(const std::string& name) const {
  const auto& v = get(name);
  if (v.is_int()) return v.as_int();
  return std::nullopt;
}

std::optional<double> PropertySet::get_real(const std::string& name) const {
  const auto& v = get(name);
  if (v.is_numeric()) return v.to_real();
  return std::nullopt;
}

std::optional<std::string> PropertySet::get_string(const std::string& name) const {
  const auto& v = get(name);
  if (v.is_string()) return v.as_string();
  return std::nullopt;
}

std::optional<bool> PropertySet::get_bool(const std::string& name) const {
  const auto& v = get(name);
  if (v.is_bool()) return v.as_bool();
  return std::nullopt;
}

void PropertySet::merge(const PropertySet& other) {
  for (const auto& [k, v] : other.props_) props_[k] = v;
}

std::string PropertySet::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : props_) {
    if (!first) os << ", ";
    first = false;
    os << k << " = " << v.to_string();
  }
  os << '}';
  return os.str();
}

}  // namespace integrade::services

namespace integrade::cdr {

void Codec<services::PropertySet>::encode(Writer& w,
                                          const services::PropertySet& ps) {
  w.write_u32(static_cast<std::uint32_t>(ps.size()));
  for (const auto& [name, value] : ps.entries()) {
    w.write_string(name);
    Codec<Value>::encode(w, value);
  }
}

services::PropertySet Codec<services::PropertySet>::decode(Reader& r) {
  services::PropertySet ps;
  const std::uint32_t n = r.read_u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string name = r.read_string();
    ps.set(name, Codec<Value>::decode(r));
  }
  return ps;
}

}  // namespace integrade::cdr
