#include "services/servants.hpp"

namespace integrade::services {

NamingServant::NamingServant(NamingService& naming) {
  register_op<NameBinding, BoolReply>(
      "bind", [&naming](const NameBinding& binding) -> Result<BoolReply> {
        const Status status = naming.bind(binding.path, binding.ref);
        return BoolReply{status.is_ok(), status.message()};
      });
  register_op<NameBinding, cdr::Empty>(
      "rebind", [&naming](const NameBinding& binding) -> Result<cdr::Empty> {
        naming.rebind(binding.path, binding.ref);
        return cdr::Empty{};
      });
  register_op<NameRequest, ResolveReply>(
      "resolve", [&naming](const NameRequest& request) -> Result<ResolveReply> {
        ResolveReply reply;
        auto resolved = naming.resolve(request.path);
        reply.found = resolved.is_ok();
        if (resolved.is_ok()) reply.ref = resolved.value();
        return reply;
      });
  register_op<NameRequest, BoolReply>(
      "unbind", [&naming](const NameRequest& request) -> Result<BoolReply> {
        const Status status = naming.unbind(request.path);
        return BoolReply{status.is_ok(), status.message()};
      });
}

TraderServant::TraderServant(Trader& trader, sim::Engine* clock, Rng rng)
    : rng_(rng) {
  auto now = [clock] { return clock != nullptr ? clock->now() : 0; };

  register_op<OfferExport, OfferIdReply>(
      "export_offer",
      [&trader, now](const OfferExport& request) -> Result<OfferIdReply> {
        return OfferIdReply{trader.export_offer(
            request.service_type, request.provider, request.properties, now())};
      });
  register_op<OfferIdReply, BoolReply>(
      "withdraw", [&trader](const OfferIdReply& request) -> Result<BoolReply> {
        const Status status = trader.withdraw(request.id);
        return BoolReply{status.is_ok(), status.message()};
      });
  register_op<OfferExport, BoolReply>(
      "modify",
      [&trader, now](const OfferExport& request) -> Result<BoolReply> {
        const Status status =
            trader.modify(request.id, request.properties, now());
        return BoolReply{status.is_ok(), status.message()};
      });
  register_op<OfferQuery, OfferQueryReply>(
      "query", [this, &trader](const OfferQuery& request) -> Result<OfferQueryReply> {
        OfferQueryReply reply;
        auto result = trader.query(
            request.service_type, request.constraint.empty() ? "true" : request.constraint,
            request.preference, static_cast<std::size_t>(
                                    std::max<std::int32_t>(0, request.max_matches)),
            &rng_);
        if (!result.is_ok()) {
          reply.ok = false;
          reply.error = result.status().to_string();
          return reply;
        }
        reply.ok = true;
        for (const auto* offer : result.value()) {
          reply.offers.push_back(
              OfferDescription{offer->id, offer->provider, offer->properties});
        }
        return reply;
      });
}

}  // namespace integrade::services
