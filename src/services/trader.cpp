#include "services/trader.hpp"

#include <algorithm>

namespace integrade::services {

OfferId Trader::export_offer(const std::string& service_type,
                             const orb::ObjectRef& provider,
                             PropertySet properties, SimTime now) {
  const OfferId id(next_id_++);
  ServiceOffer offer;
  offer.id = id;
  offer.service_type = service_type;
  offer.provider = provider;
  offer.properties = std::move(properties);
  offer.exported_at = now;
  offer.modified_at = now;
  offers_.emplace(id, std::move(offer));
  return id;
}

Status Trader::withdraw(OfferId id) {
  if (offers_.erase(id) == 0) {
    return Status(ErrorCode::kNotFound, "no offer " + to_string(id));
  }
  return Status::ok();
}

Status Trader::modify(OfferId id, PropertySet properties, SimTime now) {
  auto it = offers_.find(id);
  if (it == offers_.end()) {
    return Status(ErrorCode::kNotFound, "no offer " + to_string(id));
  }
  it->second.properties = std::move(properties);
  it->second.modified_at = now;
  return Status::ok();
}

const ServiceOffer* Trader::lookup(OfferId id) const {
  auto it = offers_.find(id);
  return it == offers_.end() ? nullptr : &it->second;
}

const ServiceOffer* Trader::find_by_provider(const std::string& service_type,
                                             const orb::ObjectRef& provider) const {
  for (const auto& [_, offer] : offers_) {
    if (offer.service_type == service_type && offer.provider == provider) {
      return &offer;
    }
  }
  return nullptr;
}

Result<std::vector<const ServiceOffer*>> Trader::query(
    const std::string& service_type, const std::string& constraint,
    const std::string& preference, std::size_t max_matches, Rng* rng) const {
  auto parsed_constraint = Constraint::parse(constraint);
  if (!parsed_constraint.is_ok()) return parsed_constraint.status();
  auto parsed_preference = Preference::parse(preference);
  if (!parsed_preference.is_ok()) return parsed_preference.status();
  return query_compiled(service_type, parsed_constraint.value(),
                        parsed_preference.value(), max_matches, rng);
}

std::vector<const ServiceOffer*> Trader::query_compiled(
    const std::string& service_type, const Constraint& constraint,
    const Preference& preference, std::size_t max_matches, Rng* rng) const {
  std::vector<const ServiceOffer*> matched;
  for (const auto& [_, offer] : offers_) {
    if (offer.service_type != service_type) continue;
    if (constraint.matches(offer.properties)) matched.push_back(&offer);
  }

  std::vector<const PropertySet*> sets;
  sets.reserve(matched.size());
  for (const auto* offer : matched) sets.push_back(&offer->properties);
  const std::vector<std::size_t> order = preference.rank(sets, rng);

  std::vector<const ServiceOffer*> out;
  const std::size_t limit =
      max_matches == 0 ? matched.size() : std::min(max_matches, matched.size());
  out.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) out.push_back(matched[order[i]]);
  return out;
}

std::size_t Trader::offer_count(const std::string& service_type) const {
  std::size_t n = 0;
  for (const auto& [_, offer] : offers_) {
    if (offer.service_type == service_type) ++n;
  }
  return n;
}

std::vector<const ServiceOffer*> Trader::offers_of_type(
    const std::string& service_type) const {
  std::vector<const ServiceOffer*> out;
  for (const auto& [_, offer] : offers_) {
    if (offer.service_type == service_type) out.push_back(&offer);
  }
  return out;
}

}  // namespace integrade::services
