#include "services/trader.hpp"

#include <algorithm>

namespace integrade::services {

namespace {

inline void hash_mix(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace

std::size_t Trader::ProviderKeyHash::operator()(
    const ProviderKey& k) const noexcept {
  std::size_t seed = std::hash<std::string>{}(k.service_type);
  hash_mix(seed, std::hash<std::uint64_t>{}(k.provider.host));
  hash_mix(seed, std::hash<std::uint64_t>{}(k.provider.key.value));
  hash_mix(seed, std::hash<std::string>{}(k.provider.type_id));
  return seed;
}

void Trader::index_offer(const ServiceOffer& offer) {
  // Ids are handed out monotonically, so appending keeps buckets id-sorted.
  by_type_[offer.service_type].push_back(&offer);
  by_provider_[ProviderKey{offer.service_type, offer.provider}].push_back(
      offer.id);
}

void Trader::unindex_offer(const ServiceOffer& offer) {
  auto type_it = by_type_.find(offer.service_type);
  if (type_it != by_type_.end()) {
    auto& bucket = type_it->second;
    auto pos = std::lower_bound(bucket.begin(), bucket.end(), offer.id,
                                [](const ServiceOffer* o, OfferId id) {
                                  return o->id < id;
                                });
    if (pos != bucket.end() && (*pos)->id == offer.id) bucket.erase(pos);
    if (bucket.empty()) by_type_.erase(type_it);
  }
  auto prov_it = by_provider_.find(ProviderKey{offer.service_type, offer.provider});
  if (prov_it != by_provider_.end()) {
    auto& ids = prov_it->second;
    auto pos = std::lower_bound(ids.begin(), ids.end(), offer.id);
    if (pos != ids.end() && *pos == offer.id) ids.erase(pos);
    if (ids.empty()) by_provider_.erase(prov_it);
  }
}

OfferId Trader::export_offer(const std::string& service_type,
                             const orb::ObjectRef& provider,
                             PropertySet properties, SimTime now) {
  const OfferId id(next_id_++);
  ServiceOffer offer;
  offer.id = id;
  offer.service_type = service_type;
  offer.provider = provider;
  offer.properties = std::move(properties);
  offer.exported_at = now;
  offer.modified_at = now;
  auto [it, inserted] = offers_.emplace(id, std::move(offer));
  (void)inserted;
  index_offer(it->second);
  return id;
}

Status Trader::withdraw(OfferId id) {
  auto it = offers_.find(id);
  if (it == offers_.end()) {
    return Status(ErrorCode::kNotFound, "no offer " + to_string(id));
  }
  unindex_offer(it->second);
  offers_.erase(it);
  return Status::ok();
}

Status Trader::modify(OfferId id, PropertySet properties, SimTime now) {
  auto it = offers_.find(id);
  if (it == offers_.end()) {
    return Status(ErrorCode::kNotFound, "no offer " + to_string(id));
  }
  it->second.properties = std::move(properties);
  it->second.modified_at = now;
  ++it->second.refreshes;
  return Status::ok();
}

void Trader::set_compiled_cache_capacity(std::size_t capacity) {
  constraint_cache_ = LruCache<std::string, Constraint>(capacity);
  preference_cache_ = LruCache<std::string, Preference>(capacity);
}

const ServiceOffer* Trader::lookup(OfferId id) const {
  auto it = offers_.find(id);
  return it == offers_.end() ? nullptr : &it->second;
}

const ServiceOffer* Trader::find_by_provider(const std::string& service_type,
                                             const orb::ObjectRef& provider) const {
  auto it = by_provider_.find(ProviderKey{service_type, provider});
  if (it == by_provider_.end() || it->second.empty()) return nullptr;
  return lookup(it->second.front());
}

Result<std::vector<const ServiceOffer*>> Trader::query(
    const std::string& service_type, const std::string& constraint,
    const std::string& preference, std::size_t max_matches, Rng* rng) const {
  // Compiled expressions are copied out of the caches (cheap: a source
  // string + shared AST root) so later insertions can never evict an entry
  // still in use.
  Constraint compiled_constraint = Constraint::always();
  if (const Constraint* cached = constraint_cache_.get(constraint)) {
    compiled_constraint = *cached;
  } else {
    auto parsed = Constraint::parse(constraint);
    if (!parsed.is_ok()) return parsed.status();
    compiled_constraint = *constraint_cache_.put(constraint,
                                                 std::move(parsed).value());
  }
  Preference compiled_preference = Preference::first();
  if (const Preference* cached = preference_cache_.get(preference)) {
    compiled_preference = *cached;
  } else {
    auto parsed = Preference::parse(preference);
    if (!parsed.is_ok()) return parsed.status();
    compiled_preference = *preference_cache_.put(preference,
                                                 std::move(parsed).value());
  }
  return query_compiled(service_type, compiled_constraint, compiled_preference,
                        max_matches, rng);
}

std::vector<const ServiceOffer*> Trader::query_compiled(
    const std::string& service_type, const Constraint& constraint,
    const Preference& preference, std::size_t max_matches, Rng* rng) const {
  auto type_it = by_type_.find(service_type);
  if (type_it == by_type_.end()) return {};

  // `first` preference keeps discovery (id) order, so a bounded query can
  // stop scanning at the max_matches-th match — the dominant cost of a
  // selective query is evaluating the constraint per offer, and this skips
  // the whole tail of the bucket. Every other preference needs the full
  // match set (kMax/kMin/kWith rank it; kRandom's shuffle must draw from
  // exactly the full set to stay replay-identical with the linear path).
  const bool stop_at_limit =
      max_matches > 0 && preference.kind() == Preference::Kind::kFirst;

  std::vector<const ServiceOffer*> matched;
  for (const ServiceOffer* offer : type_it->second) {
    if (constraint.matches(offer->properties)) {
      matched.push_back(offer);
      if (stop_at_limit && matched.size() == max_matches) break;
    }
  }

  std::vector<const PropertySet*> sets;
  sets.reserve(matched.size());
  for (const auto* offer : matched) sets.push_back(&offer->properties);
  const std::vector<std::size_t> order = preference.top(sets, max_matches, rng);

  std::vector<const ServiceOffer*> out;
  out.reserve(order.size());
  for (const std::size_t i : order) out.push_back(matched[i]);
  return out;
}

std::vector<const ServiceOffer*> Trader::query_linear(
    const std::string& service_type, const Constraint& constraint,
    const Preference& preference, std::size_t max_matches, Rng* rng) const {
  std::vector<const ServiceOffer*> matched;
  for (const auto& [_, offer] : offers_) {
    if (offer.service_type != service_type) continue;
    if (constraint.matches(offer.properties)) matched.push_back(&offer);
  }

  std::vector<const PropertySet*> sets;
  sets.reserve(matched.size());
  for (const auto* offer : matched) sets.push_back(&offer->properties);
  const std::vector<std::size_t> order = preference.rank(sets, rng);

  std::vector<const ServiceOffer*> out;
  const std::size_t limit =
      max_matches == 0 ? matched.size() : std::min(max_matches, matched.size());
  out.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) out.push_back(matched[order[i]]);
  return out;
}

std::size_t Trader::offer_count(const std::string& service_type) const {
  auto it = by_type_.find(service_type);
  return it == by_type_.end() ? 0 : it->second.size();
}

std::vector<const ServiceOffer*> Trader::offers_of_type(
    const std::string& service_type) const {
  auto it = by_type_.find(service_type);
  if (it == by_type_.end()) return {};
  return it->second;
}

void Trader::save(cdr::Writer& w) const {
  w.write_u64(next_id_);
  w.write_u32(static_cast<std::uint32_t>(offers_.size()));
  for (const auto& [id, offer] : offers_) {  // std::map: id-ascending
    w.write_id(id);
    w.write_string(offer.service_type);
    cdr::Codec<orb::ObjectRef>::encode(w, offer.provider);
    cdr::Codec<PropertySet>::encode(w, offer.properties);
    w.write_i64(offer.exported_at);
    w.write_i64(offer.modified_at);
    w.write_i64(offer.refreshes);
  }
}

Status Trader::load(std::uint32_t version, cdr::Reader& r) {
  if (version < 1 || version > kSnapshotVersion) {
    return Status(ErrorCode::kInvalidArgument,
                  "trader snapshot version " + std::to_string(version) +
                      " unsupported");
  }
  const std::uint64_t next_id = r.read_u64();
  const std::uint32_t count = r.read_u32();
  std::map<OfferId, ServiceOffer> offers;
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    ServiceOffer offer;
    offer.id = r.read_id<OfferTag>();
    offer.service_type = r.read_string();
    offer.provider = cdr::Codec<orb::ObjectRef>::decode(r);
    offer.properties = cdr::Codec<PropertySet>::decode(r);
    offer.exported_at = r.read_i64();
    offer.modified_at = r.read_i64();
    // v1 -> v2 migration shim: v1 images predate the refresh counter, so a
    // migrated offer starts counting from its restore.
    offer.refreshes = version >= 2 ? r.read_i64() : 0;
    const OfferId id = offer.id;
    offers.emplace(id, std::move(offer));
  }
  if (!r.ok()) {
    return Status(ErrorCode::kInternal, "truncated trader snapshot");
  }
  if (offers.size() != count) {
    return Status(ErrorCode::kInternal, "duplicate offer id in trader snapshot");
  }
  for (const auto& [id, _] : offers) {
    if (id.value >= next_id) {
      return Status(ErrorCode::kInternal,
                    "trader snapshot id counter behind offer " + to_string(id));
    }
  }

  offers_ = std::move(offers);
  next_id_ = next_id;
  by_type_.clear();
  by_provider_.clear();
  for (const auto& [_, offer] : offers_) index_offer(offer);
  constraint_cache_.clear();
  preference_cache_.clear();
  return check_invariants();
}

Status Trader::check_invariants() const {
  std::size_t bucketed = 0;
  for (const auto& [type, bucket] : by_type_) {
    if (bucket.empty()) {
      return Status(ErrorCode::kInternal, "empty type bucket for " + type);
    }
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const ServiceOffer* offer = bucket[i];
      const ServiceOffer* live = lookup(offer->id);
      if (live != offer) {
        return Status(ErrorCode::kInternal,
                      "type bucket " + type + " holds stale offer pointer");
      }
      if (offer->service_type != type) {
        return Status(ErrorCode::kInternal,
                      "offer " + to_string(offer->id) + " in wrong bucket " + type);
      }
      if (i > 0 && !(bucket[i - 1]->id < offer->id)) {
        return Status(ErrorCode::kInternal,
                      "type bucket " + type + " not id-ascending");
      }
    }
    bucketed += bucket.size();
  }
  if (bucketed != offers_.size()) {
    return Status(ErrorCode::kInternal,
                  "type buckets cover " + std::to_string(bucketed) + " of " +
                      std::to_string(offers_.size()) + " offers");
  }

  std::size_t provider_entries = 0;
  for (const auto& [key, ids] : by_provider_) {
    if (ids.empty()) {
      return Status(ErrorCode::kInternal,
                    "empty provider entry for " + key.service_type);
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const ServiceOffer* offer = lookup(ids[i]);
      if (offer == nullptr) {
        return Status(ErrorCode::kInternal,
                      "provider index holds dead offer " + to_string(ids[i]));
      }
      if (offer->service_type != key.service_type ||
          !(offer->provider == key.provider)) {
        return Status(ErrorCode::kInternal,
                      "provider index misfiled offer " + to_string(ids[i]));
      }
      if (i > 0 && !(ids[i - 1] < ids[i])) {
        return Status(ErrorCode::kInternal,
                      "provider entry for " + key.service_type +
                          " not id-ascending");
      }
    }
    provider_entries += ids.size();
  }
  if (provider_entries != offers_.size()) {
    return Status(ErrorCode::kInternal,
                  "provider index covers " + std::to_string(provider_entries) +
                      " of " + std::to_string(offers_.size()) + " offers");
  }
  return Status::ok();
}

}  // namespace integrade::services
