#include "services/constraint.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <sstream>

namespace integrade::services {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) || c == '.'; }

TokenKind keyword_kind(const std::string& word) {
  if (word == "and") return TokenKind::kAnd;
  if (word == "or") return TokenKind::kOr;
  if (word == "not") return TokenKind::kNot;
  if (word == "exist") return TokenKind::kExist;
  if (word == "in") return TokenKind::kIn;
  if (word == "true" || word == "TRUE") return TokenKind::kTrue;
  if (word == "false" || word == "FALSE") return TokenKind::kFalse;
  if (word == "max") return TokenKind::kMax;
  if (word == "min") return TokenKind::kMin;
  if (word == "with") return TokenKind::kWith;
  if (word == "random") return TokenKind::kRandom;
  if (word == "first") return TokenKind::kFirst;
  return TokenKind::kIdent;
}

}  // namespace

Result<std::vector<Token>> tokenize(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto fail = [&](const std::string& what) -> Result<std::vector<Token>> {
    return Status(ErrorCode::kInvalidArgument,
                  what + " at offset " + std::to_string(i));
  };

  while (i < n) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      std::size_t end = i;
      bool has_dot = false;
      bool has_exp = false;
      while (end < n) {
        const char d = source[end];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++end;
        } else if (d == '.' && !has_dot && !has_exp) {
          has_dot = true;
          ++end;
        } else if ((d == 'e' || d == 'E') && !has_exp && end > i) {
          has_exp = true;
          ++end;
          if (end < n && (source[end] == '+' || source[end] == '-')) ++end;
        } else {
          break;
        }
      }
      tok.kind = TokenKind::kNumber;
      tok.text = source.substr(i, end - i);
      try {
        tok.number = std::stod(tok.text);
      } catch (const std::exception&) {
        return fail("malformed number '" + tok.text + "'");
      }
      tok.is_integer = !has_dot && !has_exp;
      i = end;
    } else if (c == '\'') {
      std::size_t end = i + 1;
      std::string text;
      while (end < n && source[end] != '\'') {
        text.push_back(source[end]);
        ++end;
      }
      if (end >= n) return fail("unterminated string literal");
      tok.kind = TokenKind::kString;
      tok.text = std::move(text);
      i = end + 1;
    } else if (ident_start(c)) {
      std::size_t end = i;
      while (end < n && ident_char(source[end])) ++end;
      tok.text = source.substr(i, end - i);
      tok.kind = keyword_kind(tok.text);
      i = end;
    } else {
      auto two = [&](char a, char b) {
        return c == a && i + 1 < n && source[i + 1] == b;
      };
      if (two('=', '=')) { tok.kind = TokenKind::kEq; i += 2; }
      else if (two('!', '=')) { tok.kind = TokenKind::kNe; i += 2; }
      else if (two('<', '=')) { tok.kind = TokenKind::kLe; i += 2; }
      else if (two('>', '=')) { tok.kind = TokenKind::kGe; i += 2; }
      else if (c == '<') { tok.kind = TokenKind::kLt; ++i; }
      else if (c == '>') { tok.kind = TokenKind::kGt; ++i; }
      else if (c == '~') { tok.kind = TokenKind::kTilde; ++i; }
      else if (c == '+') { tok.kind = TokenKind::kPlus; ++i; }
      else if (c == '-') { tok.kind = TokenKind::kMinus; ++i; }
      else if (c == '*') { tok.kind = TokenKind::kStar; ++i; }
      else if (c == '/') { tok.kind = TokenKind::kSlash; ++i; }
      else if (c == '(') { tok.kind = TokenKind::kLParen; ++i; }
      else if (c == ')') { tok.kind = TokenKind::kRParen; ++i; }
      else return fail(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(tok));
  }
  Token end_tok;
  end_tok.kind = TokenKind::kEnd;
  end_tok.offset = n;
  tokens.push_back(end_tok);
  return tokens;
}

// ---------------------------------------------------------------------------
// Parser (recursive descent, mirrors the grammar in the header)
// ---------------------------------------------------------------------------
namespace {

ExprPtr make_literal(cdr::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr make_property(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kProperty;
  e->property = std::move(name);
  return e;
}

ExprPtr make_unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> parse_full() {
    auto expr = parse_or();
    if (!expr.is_ok()) return expr;
    if (peek().kind != TokenKind::kEnd) {
      return error("trailing tokens after expression");
    }
    return expr;
  }

  Result<ExprPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs.is_ok()) return lhs;
    ExprPtr node = std::move(lhs).value();
    while (peek().kind == TokenKind::kOr) {
      advance();
      auto rhs = parse_and();
      if (!rhs.is_ok()) return rhs;
      node = make_binary(BinaryOp::kOr, std::move(node), std::move(rhs).value());
    }
    return node;
  }

  const Token& peek() const { return tokens_[pos_]; }

 private:
  Result<ExprPtr> parse_and() {
    auto lhs = parse_not();
    if (!lhs.is_ok()) return lhs;
    ExprPtr node = std::move(lhs).value();
    while (peek().kind == TokenKind::kAnd) {
      advance();
      auto rhs = parse_not();
      if (!rhs.is_ok()) return rhs;
      node = make_binary(BinaryOp::kAnd, std::move(node), std::move(rhs).value());
    }
    return node;
  }

  Result<ExprPtr> parse_not() {
    if (peek().kind == TokenKind::kNot) {
      advance();
      auto operand = parse_not();
      if (!operand.is_ok()) return operand;
      return ExprPtr(make_unary(UnaryOp::kNot, std::move(operand).value()));
    }
    return parse_comparison();
  }

  Result<ExprPtr> parse_comparison() {
    auto lhs = parse_additive();
    if (!lhs.is_ok()) return lhs;
    BinaryOp op;
    switch (peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNe: op = BinaryOp::kNe; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      case TokenKind::kTilde: op = BinaryOp::kSubstr; break;
      case TokenKind::kIn: op = BinaryOp::kIn; break;
      default:
        return lhs;
    }
    advance();
    auto rhs = parse_additive();
    if (!rhs.is_ok()) return rhs;
    return ExprPtr(make_binary(op, std::move(lhs).value(), std::move(rhs).value()));
  }

  Result<ExprPtr> parse_additive() {
    auto lhs = parse_mult();
    if (!lhs.is_ok()) return lhs;
    ExprPtr node = std::move(lhs).value();
    while (peek().kind == TokenKind::kPlus || peek().kind == TokenKind::kMinus) {
      const BinaryOp op =
          peek().kind == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
      advance();
      auto rhs = parse_mult();
      if (!rhs.is_ok()) return rhs;
      node = make_binary(op, std::move(node), std::move(rhs).value());
    }
    return node;
  }

  Result<ExprPtr> parse_mult() {
    auto lhs = parse_unary();
    if (!lhs.is_ok()) return lhs;
    ExprPtr node = std::move(lhs).value();
    while (peek().kind == TokenKind::kStar || peek().kind == TokenKind::kSlash) {
      const BinaryOp op =
          peek().kind == TokenKind::kStar ? BinaryOp::kMul : BinaryOp::kDiv;
      advance();
      auto rhs = parse_unary();
      if (!rhs.is_ok()) return rhs;
      node = make_binary(op, std::move(node), std::move(rhs).value());
    }
    return node;
  }

  Result<ExprPtr> parse_unary() {
    if (peek().kind == TokenKind::kMinus) {
      advance();
      auto operand = parse_unary();
      if (!operand.is_ok()) return operand;
      return ExprPtr(make_unary(UnaryOp::kNeg, std::move(operand).value()));
    }
    if (peek().kind == TokenKind::kExist) {
      advance();
      if (peek().kind != TokenKind::kIdent) {
        return error("'exist' requires a property name");
      }
      auto node = make_unary(UnaryOp::kExist, nullptr);
      node->property = peek().text;
      advance();
      return node;
    }
    return parse_primary();
  }

  Result<ExprPtr> parse_primary() {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::kNumber: {
        cdr::Value v = tok.is_integer
                           ? cdr::Value(static_cast<std::int64_t>(tok.number))
                           : cdr::Value(tok.number);
        advance();
        return make_literal(std::move(v));
      }
      case TokenKind::kString: {
        cdr::Value v(tok.text);
        advance();
        return make_literal(std::move(v));
      }
      case TokenKind::kTrue:
        advance();
        return make_literal(cdr::Value(true));
      case TokenKind::kFalse:
        advance();
        return make_literal(cdr::Value(false));
      case TokenKind::kIdent: {
        auto node = make_property(tok.text);
        advance();
        return node;
      }
      case TokenKind::kLParen: {
        advance();
        auto inner = parse_or();
        if (!inner.is_ok()) return inner;
        if (peek().kind != TokenKind::kRParen) return error("expected ')'");
        advance();
        return inner;
      }
      default:
        return error("expected a value, property, or '('");
    }
  }

  Result<ExprPtr> error(const std::string& what) const {
    return Status(ErrorCode::kInvalidArgument,
                  what + " at offset " + std::to_string(peek().offset));
  }

  void advance() { ++pos_; }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// AST printing (for diagnostics)
// ---------------------------------------------------------------------------
namespace {

const char* binary_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kSubstr: return "~";
    case BinaryOp::kIn: return "in";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
  }
  return "?";
}

}  // namespace

std::string Expr::to_string() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.to_string();
    case ExprKind::kProperty:
      return property;
    case ExprKind::kUnary:
      // Parenthesized so the printed form reparses in any operand position
      // (e.g. as the right-hand side of an arithmetic operator).
      switch (unary_op) {
        case UnaryOp::kNeg: return "-(" + lhs->to_string() + ")";
        case UnaryOp::kNot: return "(not (" + lhs->to_string() + "))";
        case UnaryOp::kExist: return "(exist " + property + ")";
      }
      return "?";
    case ExprKind::kBinary:
      return "(" + lhs->to_string() + " " + binary_op_name(binary_op) + " " +
             rhs->to_string() + ")";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------
namespace {

EvalResult eval_compare(BinaryOp op, const EvalResult& l, const EvalResult& r) {
  if (!l.defined || !r.defined) return EvalResult::undef();
  const cdr::Value& a = l.value;
  const cdr::Value& b = r.value;

  if (op == BinaryOp::kEq) return EvalResult::of(cdr::Value(a == b));
  if (op == BinaryOp::kNe) return EvalResult::of(cdr::Value(!(a == b)));

  // Ordering: numerics against numerics, strings against strings.
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.to_real();
    const double y = b.to_real();
    bool out = false;
    switch (op) {
      case BinaryOp::kLt: out = x < y; break;
      case BinaryOp::kLe: out = x <= y; break;
      case BinaryOp::kGt: out = x > y; break;
      case BinaryOp::kGe: out = x >= y; break;
      default: return EvalResult::undef();
    }
    return EvalResult::of(cdr::Value(out));
  }
  if (a.is_string() && b.is_string()) {
    const int cmp = a.as_string().compare(b.as_string());
    bool out = false;
    switch (op) {
      case BinaryOp::kLt: out = cmp < 0; break;
      case BinaryOp::kLe: out = cmp <= 0; break;
      case BinaryOp::kGt: out = cmp > 0; break;
      case BinaryOp::kGe: out = cmp >= 0; break;
      default: return EvalResult::undef();
    }
    return EvalResult::of(cdr::Value(out));
  }
  return EvalResult::undef();  // type mismatch
}

EvalResult eval_arith(BinaryOp op, const EvalResult& l, const EvalResult& r) {
  if (!l.defined || !r.defined) return EvalResult::undef();
  // String concatenation with '+', like many trader implementations allow.
  if (op == BinaryOp::kAdd && l.value.is_string() && r.value.is_string()) {
    return EvalResult::of(cdr::Value(l.value.as_string() + r.value.as_string()));
  }
  if (!l.value.is_numeric() || !r.value.is_numeric()) return EvalResult::undef();

  // Preserve integer arithmetic when both sides are integers (division
  // excepted: it is always real, so `ram / 2` never truncates surprisingly).
  // Results that would overflow int64 fall through to double arithmetic.
  if (l.value.is_int() && r.value.is_int() && op != BinaryOp::kDiv) {
    const std::int64_t x = l.value.as_int();
    const std::int64_t y = r.value.as_int();
    std::int64_t out = 0;
    switch (op) {
      case BinaryOp::kAdd:
        if (!__builtin_add_overflow(x, y, &out)) return EvalResult::of(cdr::Value(out));
        break;
      case BinaryOp::kSub:
        if (!__builtin_sub_overflow(x, y, &out)) return EvalResult::of(cdr::Value(out));
        break;
      case BinaryOp::kMul:
        if (!__builtin_mul_overflow(x, y, &out)) return EvalResult::of(cdr::Value(out));
        break;
      default: break;
    }
  }
  const double x = l.value.to_real();
  const double y = r.value.to_real();
  switch (op) {
    case BinaryOp::kAdd: return EvalResult::of(cdr::Value(x + y));
    case BinaryOp::kSub: return EvalResult::of(cdr::Value(x - y));
    case BinaryOp::kMul: return EvalResult::of(cdr::Value(x * y));
    case BinaryOp::kDiv:
      if (y == 0.0) return EvalResult::undef();
      return EvalResult::of(cdr::Value(x / y));
    default:
      return EvalResult::undef();
  }
}

}  // namespace

EvalResult evaluate(const Expr& expr, const PropertySet& props) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return EvalResult::of(expr.literal);

    case ExprKind::kProperty: {
      if (!props.has(expr.property)) return EvalResult::undef();
      return EvalResult::of(props.get(expr.property));
    }

    case ExprKind::kUnary:
      switch (expr.unary_op) {
        case UnaryOp::kExist:
          return EvalResult::of(cdr::Value(props.has(expr.property)));
        case UnaryOp::kNot: {
          const EvalResult v = evaluate(*expr.lhs, props);
          if (!v.defined || !v.value.is_bool()) return EvalResult::undef();
          return EvalResult::of(cdr::Value(!v.value.as_bool()));
        }
        case UnaryOp::kNeg: {
          const EvalResult v = evaluate(*expr.lhs, props);
          if (!v.defined || !v.value.is_numeric()) return EvalResult::undef();
          if (v.value.is_int() &&
              v.value.as_int() != std::numeric_limits<std::int64_t>::min()) {
            return EvalResult::of(cdr::Value(-v.value.as_int()));
          }
          return EvalResult::of(cdr::Value(-v.value.to_real()));
        }
      }
      return EvalResult::undef();

    case ExprKind::kBinary: {
      switch (expr.binary_op) {
        case BinaryOp::kAnd: {
          // Short-circuit with three-valued logic: false and X == false.
          const EvalResult l = evaluate(*expr.lhs, props);
          if (l.defined && l.value.is_bool() && !l.value.as_bool()) {
            return EvalResult::of(cdr::Value(false));
          }
          const EvalResult r = evaluate(*expr.rhs, props);
          if (r.defined && r.value.is_bool() && !r.value.as_bool()) {
            return EvalResult::of(cdr::Value(false));
          }
          if (!l.defined || !l.value.is_bool() || !r.defined || !r.value.is_bool()) {
            return EvalResult::undef();
          }
          return EvalResult::of(cdr::Value(true));
        }
        case BinaryOp::kOr: {
          const EvalResult l = evaluate(*expr.lhs, props);
          if (l.defined && l.value.is_bool() && l.value.as_bool()) {
            return EvalResult::of(cdr::Value(true));
          }
          const EvalResult r = evaluate(*expr.rhs, props);
          if (r.defined && r.value.is_bool() && r.value.as_bool()) {
            return EvalResult::of(cdr::Value(true));
          }
          if (!l.defined || !l.value.is_bool() || !r.defined || !r.value.is_bool()) {
            return EvalResult::undef();
          }
          return EvalResult::of(cdr::Value(false));
        }
        case BinaryOp::kSubstr: {
          const EvalResult l = evaluate(*expr.lhs, props);
          const EvalResult r = evaluate(*expr.rhs, props);
          if (!l.defined || !r.defined || !l.value.is_string() ||
              !r.value.is_string()) {
            return EvalResult::undef();
          }
          return EvalResult::of(cdr::Value(
              r.value.as_string().find(l.value.as_string()) != std::string::npos));
        }
        case BinaryOp::kIn: {
          const EvalResult l = evaluate(*expr.lhs, props);
          const EvalResult r = evaluate(*expr.rhs, props);
          if (!l.defined || !r.defined || !r.value.is_list()) {
            return EvalResult::undef();
          }
          for (const auto& item : r.value.as_list()) {
            if (item == l.value) return EvalResult::of(cdr::Value(true));
          }
          return EvalResult::of(cdr::Value(false));
        }
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return eval_compare(expr.binary_op, evaluate(*expr.lhs, props),
                              evaluate(*expr.rhs, props));
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          return eval_arith(expr.binary_op, evaluate(*expr.lhs, props),
                            evaluate(*expr.rhs, props));
      }
      return EvalResult::undef();
    }
  }
  return EvalResult::undef();
}

bool matches(const Expr& expr, const PropertySet& props) {
  const EvalResult r = evaluate(expr, props);
  return r.defined && r.value.is_bool() && r.value.as_bool();
}

// ---------------------------------------------------------------------------
// Constraint / Preference
// ---------------------------------------------------------------------------
Constraint::Constraint(std::string source, ExprPtr root)
    : source_(std::move(source)), root_(std::move(root)) {}

Result<Constraint> Constraint::parse(const std::string& source) {
  auto tokens = tokenize(source);
  if (!tokens.is_ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  auto expr = parser.parse_full();
  if (!expr.is_ok()) return expr.status();
  return Constraint(source, std::move(expr).value());
}

Constraint Constraint::always() {
  auto parsed = parse("true");
  assert(parsed.is_ok());
  return std::move(parsed).value();
}

bool Constraint::matches(const PropertySet& props) const {
  return services::matches(*root_, props);
}

Result<Preference> Preference::parse(const std::string& source) {
  auto tokens = tokenize(source);
  if (!tokens.is_ok()) return tokens.status();
  auto toks = std::move(tokens).value();
  if (toks.empty() || toks.front().kind == TokenKind::kEnd) {
    return Preference::first();
  }
  Kind kind;
  switch (toks.front().kind) {
    case TokenKind::kMax: kind = Kind::kMax; break;
    case TokenKind::kMin: kind = Kind::kMin; break;
    case TokenKind::kWith: kind = Kind::kWith; break;
    case TokenKind::kRandom:
      return Preference(Kind::kRandom, nullptr);
    case TokenKind::kFirst:
      return Preference(Kind::kFirst, nullptr);
    default:
      return Status(ErrorCode::kInvalidArgument,
                    "preference must start with max/min/with/random/first");
  }
  toks.erase(toks.begin());
  Parser parser(std::move(toks));
  auto expr = parser.parse_full();
  if (!expr.is_ok()) return expr.status();
  return Preference(kind, std::shared_ptr<const Expr>(std::move(expr).value()));
}

Preference Preference::first() { return Preference(Kind::kFirst, nullptr); }

std::vector<std::size_t> Preference::rank(
    const std::vector<const PropertySet*>& sets, Rng* rng) const {
  return top(sets, 0, rng);
}

std::vector<std::size_t> Preference::top(
    const std::vector<const PropertySet*>& sets, std::size_t k,
    Rng* rng) const {
  std::vector<std::size_t> order(sets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const bool partial = k > 0 && k < order.size();

  switch (kind_) {
    case Kind::kFirst:
      if (partial) order.resize(k);
      return order;
    case Kind::kRandom: {
      // Always a full shuffle: the number of Rng draws must not depend on k,
      // or experiments replay differently through top-k vs full-rank paths.
      if (rng != nullptr) rng->shuffle(order);
      if (partial) order.resize(k);
      return order;
    }
    case Kind::kWith: {
      std::vector<char> match(sets.size());
      for (std::size_t i = 0; i < sets.size(); ++i) {
        match[i] = services::matches(*expr_, *sets[i]) ? 1 : 0;
      }
      if (partial) {
        // A stable sort under comparator c equals an ordinary sort under the
        // total order (c, index); partial_sort under that total order yields
        // exactly the first k of the stable full rank.
        std::partial_sort(order.begin(),
                          order.begin() + static_cast<std::ptrdiff_t>(k),
                          order.end(), [&](std::size_t a, std::size_t b) {
                            if (match[a] != match[b]) return match[a] > match[b];
                            return a < b;
                          });
        order.resize(k);
      } else {
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return match[a] != 0 && match[b] == 0;
                         });
      }
      return order;
    }
    case Kind::kMax:
    case Kind::kMin: {
      // Score each offer once; undefined scores sort after defined ones.
      std::vector<std::pair<bool, double>> score(sets.size());
      for (std::size_t i = 0; i < sets.size(); ++i) {
        const EvalResult r = evaluate(*expr_, *sets[i]);
        if (r.defined && r.value.is_numeric()) {
          score[i] = {true, r.value.to_real()};
        } else {
          score[i] = {false, 0.0};
        }
      }
      const bool maximize = kind_ == Kind::kMax;
      const auto before = [&](std::size_t a, std::size_t b) {
        if (score[a].first != score[b].first) {
          return score[a].first;  // defined before undefined
        }
        if (!score[a].first) return false;
        return maximize ? score[a].second > score[b].second
                        : score[a].second < score[b].second;
      };
      if (partial) {
        std::partial_sort(order.begin(),
                          order.begin() + static_cast<std::ptrdiff_t>(k),
                          order.end(), [&](std::size_t a, std::size_t b) {
                            if (before(a, b)) return true;
                            if (before(b, a)) return false;
                            return a < b;
                          });
        order.resize(k);
      } else {
        std::stable_sort(order.begin(), order.end(), before);
      }
      return order;
    }
  }
  return order;
}

}  // namespace integrade::services
