// ASCT — Application Submission and Control Tool (paper §4).
//
// The grid user's window into InteGrade: build an application description
// (prerequisites, resource requirements, preferences, optional virtual
// topology), submit it to a GRM, and monitor its progress through the
// AppEvent stream the managers push back.
//
// AppBuilder is the fluent construction API the examples use; Asct is the
// long-lived client that owns the notification servant and the per-app
// progress ledger.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "orb/orb.hpp"
#include "protocol/messages.hpp"
#include "sim/engine.hpp"

namespace integrade::asct {

/// Fluent builder for ApplicationSpec. Allocates globally unique app/task
/// ids so specs from different ASCTs never collide.
class AppBuilder {
 public:
  explicit AppBuilder(std::string name);

  AppBuilder& kind(protocol::AppKind kind);
  /// Add `count` equal tasks of `work` MInstr each.
  AppBuilder& tasks(int count, MInstr work);
  /// Explicit per-task work (heterogeneous bag-of-tasks).
  AppBuilder& task_works(const std::vector<MInstr>& works);
  AppBuilder& ram(Bytes per_task);
  AppBuilder& io(Bytes input, Bytes output);
  AppBuilder& platform(std::string platform);
  AppBuilder& constraint(std::string expr);
  AppBuilder& preference(std::string expr);
  AppBuilder& estimated_duration(SimDuration d);
  AppBuilder& checkpoint_period(SimDuration period, Bytes state_bytes);
  /// BSP shape: `processes` ranks, `supersteps` rounds, `comm` bytes per
  /// rank per superstep, checkpoint every `ckpt_every` supersteps.
  AppBuilder& bsp(int processes, int supersteps, MInstr work_per_superstep,
                  Bytes comm, int ckpt_every, Bytes ckpt_bytes);
  AppBuilder& topology(protocol::TopologySpec topo);
  /// Scheduling economy: the tenant this application bills against. Rides a
  /// trailing extension on the submit frame — absent (the default) it adds
  /// no wire bytes.
  AppBuilder& tenant(std::string tenant);
  /// Deadline/budget bid: `deadline` is relative to submission; the GRM
  /// schedules EDF within the tenant, and node owners may screen the bid
  /// with an NCC `bid_filter` constraint.
  AppBuilder& bid(double budget, SimDuration deadline);

  /// Finalize. `notify` is the ASCT notification ref (Asct::ref()).
  [[nodiscard]] protocol::ApplicationSpec build(const orb::ObjectRef& notify) const;

  [[nodiscard]] AppId id() const { return id_; }

 private:
  AppId id_;
  std::string name_;
  protocol::AppKind kind_ = protocol::AppKind::kSequential;
  std::vector<MInstr> works_;
  Bytes ram_ = 32 * kMiB;
  Bytes input_ = 0;
  Bytes output_ = 0;
  std::string platform_ = "linux-x86";
  std::string constraint_;
  std::string preference_;
  SimDuration estimated_ = 0;
  SimDuration ckpt_period_ = 0;
  Bytes ckpt_bytes_ = 0;
  // BSP.
  int bsp_processes_ = 0;
  int bsp_supersteps_ = 0;
  MInstr bsp_work_per_step_ = 0;
  Bytes bsp_comm_ = 0;
  int bsp_ckpt_every_ = 0;
  protocol::TopologySpec topology_;
  // Scheduling economy.
  std::string tenant_;
  double bid_budget_ = 0.0;
  SimDuration bid_deadline_ = 0;
};

struct AppProgress {
  protocol::ApplicationSpec spec;
  SimTime submitted_at = 0;
  SimTime completed_at = kTimeNever;
  int scheduled = 0;
  int completed = 0;
  int evictions = 0;
  int reschedules = 0;
  bool accepted = false;
  bool done = false;
  bool failed = false;
  std::string reject_reason;
  /// Tasks whose kTaskCompleted event was already counted. After a manager
  /// failover with journal replay the new GRM may re-deliver terminal events
  /// the dead primary already sent; the ledger must not double-count them.
  std::set<TaskId> completed_tasks;

  [[nodiscard]] SimDuration makespan() const {
    return done ? completed_at - submitted_at : -1;
  }
};

class Asct {
 public:
  Asct(sim::Engine& engine, orb::Orb& orb);
  ~Asct();
  Asct(const Asct&) = delete;
  Asct& operator=(const Asct&) = delete;

  [[nodiscard]] const orb::ObjectRef& ref() const { return self_ref_; }

  /// Submit an application to `grm`. The submit reply (accept/reject) and
  /// all later events update the progress ledger.
  AppId submit(const orb::ObjectRef& grm, const protocol::ApplicationSpec& spec);

  /// Ask the managing GRM to abort the application. Running tasks are
  /// cancelled on their nodes; the ledger marks the app failed when the
  /// GRM's kAppFailed event arrives.
  void cancel(const orb::ObjectRef& grm, AppId app);

  [[nodiscard]] const AppProgress* progress(AppId app) const;
  [[nodiscard]] bool done(AppId app) const;
  [[nodiscard]] int apps_completed() const;
  [[nodiscard]] const std::vector<protocol::AppEvent>& events() const {
    return events_;
  }
  [[nodiscard]] MetricRegistry& metrics() { return metrics_; }

  void set_on_app_done(std::function<void(AppId)> callback) {
    on_app_done_ = std::move(callback);
  }

  /// Servant entry point (public for tests).
  void handle_event(const protocol::AppEvent& event);

 private:
  sim::Engine& engine_;
  orb::Orb& orb_;
  orb::ObjectRef self_ref_;
  std::map<AppId, AppProgress> apps_;
  std::vector<protocol::AppEvent> events_;
  std::function<void(AppId)> on_app_done_;
  MetricRegistry metrics_;
};

}  // namespace integrade::asct
