#include "asct/asct.hpp"

#include <atomic>
#include <cassert>

#include "protocol/trace_names.hpp"

namespace integrade::asct {

namespace {

std::uint64_t next_app_id() {
  static std::uint64_t counter = 1;
  return counter++;
}

std::uint64_t next_task_id() {
  static std::uint64_t counter = 1;
  return counter++;
}

class AsctServant final : public orb::SkeletonBase {
 public:
  explicit AsctServant(Asct& asct) {
    register_op<protocol::AppEvent, cdr::Empty>(
        "app_event",
        [&asct](const protocol::AppEvent& event) -> Result<cdr::Empty> {
          asct.handle_event(event);
          return cdr::Empty{};
        });
  }
  [[nodiscard]] const char* type_id() const override {
    return "IDL:integrade/Asct:1.0";
  }
};

}  // namespace

AppBuilder::AppBuilder(std::string name)
    : id_(next_app_id()), name_(std::move(name)) {}

AppBuilder& AppBuilder::kind(protocol::AppKind kind) {
  kind_ = kind;
  return *this;
}

AppBuilder& AppBuilder::tasks(int count, MInstr work) {
  works_.assign(static_cast<std::size_t>(count), work);
  return *this;
}

AppBuilder& AppBuilder::task_works(const std::vector<MInstr>& works) {
  works_ = works;
  return *this;
}

AppBuilder& AppBuilder::ram(Bytes per_task) {
  ram_ = per_task;
  return *this;
}

AppBuilder& AppBuilder::io(Bytes input, Bytes output) {
  input_ = input;
  output_ = output;
  return *this;
}

AppBuilder& AppBuilder::platform(std::string platform) {
  platform_ = std::move(platform);
  return *this;
}

AppBuilder& AppBuilder::constraint(std::string expr) {
  constraint_ = std::move(expr);
  return *this;
}

AppBuilder& AppBuilder::preference(std::string expr) {
  preference_ = std::move(expr);
  return *this;
}

AppBuilder& AppBuilder::estimated_duration(SimDuration d) {
  estimated_ = d;
  return *this;
}

AppBuilder& AppBuilder::checkpoint_period(SimDuration period, Bytes state_bytes) {
  ckpt_period_ = period;
  ckpt_bytes_ = state_bytes;
  return *this;
}

AppBuilder& AppBuilder::bsp(int processes, int supersteps,
                            MInstr work_per_superstep, Bytes comm,
                            int ckpt_every, Bytes ckpt_bytes) {
  kind_ = protocol::AppKind::kBsp;
  bsp_processes_ = processes;
  bsp_supersteps_ = supersteps;
  bsp_work_per_step_ = work_per_superstep;
  bsp_comm_ = comm;
  bsp_ckpt_every_ = ckpt_every;
  ckpt_bytes_ = ckpt_bytes;
  return *this;
}

AppBuilder& AppBuilder::topology(protocol::TopologySpec topo) {
  topology_ = std::move(topo);
  return *this;
}

AppBuilder& AppBuilder::tenant(std::string tenant) {
  tenant_ = std::move(tenant);
  return *this;
}

AppBuilder& AppBuilder::bid(double budget, SimDuration deadline) {
  bid_budget_ = budget;
  bid_deadline_ = deadline;
  return *this;
}

protocol::ApplicationSpec AppBuilder::build(const orb::ObjectRef& notify) const {
  protocol::ApplicationSpec spec;
  spec.id = id_;
  spec.name = name_;
  spec.kind = kind_;
  spec.requirements.constraint = constraint_;
  spec.requirements.preference = preference_;
  spec.topology = topology_;
  spec.estimated_duration = estimated_;
  spec.notify = notify;
  spec.tenant = tenant_;
  spec.bid_budget = bid_budget_;
  spec.bid_deadline = bid_deadline_;

  if (kind_ == protocol::AppKind::kBsp) {
    assert(bsp_processes_ > 0 && bsp_supersteps_ > 0);
    for (int rank = 0; rank < bsp_processes_; ++rank) {
      protocol::TaskDescriptor task;
      task.id = TaskId(next_task_id());
      task.app = id_;
      task.kind = protocol::AppKind::kBsp;
      task.binary_platform = platform_;
      task.work = bsp_work_per_step_ * bsp_supersteps_;
      task.ram_needed = ram_;
      task.input_bytes = input_;
      task.output_bytes = output_;
      task.bsp_rank = rank;
      task.bsp_processes = bsp_processes_;
      task.bsp_supersteps = bsp_supersteps_;
      task.bsp_comm_bytes_per_step = bsp_comm_;
      task.checkpoint_every = bsp_ckpt_every_;
      task.checkpoint_bytes = ckpt_bytes_;
      spec.tasks.push_back(std::move(task));
    }
    return spec;
  }

  assert(!works_.empty() && "call tasks() or task_works() first");
  for (std::size_t i = 0; i < works_.size(); ++i) {
    protocol::TaskDescriptor task;
    task.id = TaskId(next_task_id());
    task.app = id_;
    task.kind = kind_;
    task.binary_platform = platform_;
    task.work = works_[i];
    task.ram_needed = ram_;
    task.input_bytes = input_;
    task.output_bytes = output_;
    // Task index doubles as the checkpoint rank for non-BSP tasks.
    task.bsp_rank = static_cast<std::int32_t>(i);
    task.checkpoint_period = ckpt_period_;
    task.checkpoint_bytes = ckpt_bytes_;
    spec.tasks.push_back(std::move(task));
  }
  return spec;
}

Asct::Asct(sim::Engine& engine, orb::Orb& orb) : engine_(engine), orb_(orb) {
  self_ref_ = orb_.activate(std::make_shared<AsctServant>(*this));
}

Asct::~Asct() {
  if (!orb_.is_shutdown()) orb_.deactivate(self_ref_.key);
}

AppId Asct::submit(const orb::ObjectRef& grm,
                   const protocol::ApplicationSpec& spec) {
  AppProgress progress;
  progress.spec = spec;
  progress.submitted_at = engine_.now();
  apps_[spec.id] = std::move(progress);
  metrics_.counter("apps_submitted").add();

  // Root of the submission's trace tree: everything downstream (GRM
  // admission, trader queries, negotiation, execution, reports) links back
  // to this span through the context the TraceScope stamps on the call.
  obs::Tracer* tr = orb_.tracer();
  obs::Tracer::ActiveSpan root;
  if (tr != nullptr && tr->enabled()) {
    root = tr->start(protocol::kSpanAsctSubmit, obs::TraceContext{},
                     engine_.now());
    root.app = spec.id.value;
  }
  orb::TraceScope trace_scope(orb_, root.context());
  orb::call<protocol::ApplicationSpec, protocol::SubmitReply>(
      orb_, grm, "submit", spec,
      [this, id = spec.id, root](Result<protocol::SubmitReply> reply) {
        if (obs::Tracer* tr = orb_.tracer(); tr != nullptr) {
          const bool accepted = reply.is_ok() && reply.value().accepted;
          tr->finish(root, engine_.now(), accepted ? "accepted" : "rejected");
        }
        auto it = apps_.find(id);
        if (it == apps_.end()) return;
        if (!reply.is_ok() || !reply.value().accepted) {
          it->second.failed = true;
          it->second.reject_reason = reply.is_ok()
                                         ? reply.value().reason
                                         : reply.status().to_string();
          metrics_.counter("apps_rejected").add();
          return;
        }
        it->second.accepted = true;
      });
  return spec.id;
}

void Asct::cancel(const orb::ObjectRef& grm, AppId app) {
  metrics_.counter("apps_cancelled").add();
  orb::oneway(orb_, grm, "cancel_app", protocol::CancelApp{app});
}

void Asct::handle_event(const protocol::AppEvent& event) {
  events_.push_back(event);
  auto it = apps_.find(event.app);
  if (it == apps_.end()) return;
  AppProgress& progress = it->second;

  switch (event.kind) {
    case protocol::AppEventKind::kTaskScheduled:
      ++progress.scheduled;
      break;
    case protocol::AppEventKind::kTaskCompleted:
      if (event.task.valid() &&
          !progress.completed_tasks.insert(event.task).second) {
        metrics_.counter("duplicate_app_events_ignored").add();
        break;  // journal replay after failover re-delivered this terminal
      }
      ++progress.completed;
      break;
    case protocol::AppEventKind::kTaskEvicted:
      ++progress.evictions;
      break;
    case protocol::AppEventKind::kTaskRescheduled:
      ++progress.reschedules;
      break;
    case protocol::AppEventKind::kAppCompleted:
      if (!progress.done) {  // dedupe (remote fragments, replays)
        progress.done = true;
        progress.completed_at = event.at;
        metrics_.counter("apps_completed").add();
        if (on_app_done_) on_app_done_(event.app);
      }
      break;
    case protocol::AppEventKind::kAppFailed:
      progress.failed = true;
      break;
  }
}

const AppProgress* Asct::progress(AppId app) const {
  auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : &it->second;
}

bool Asct::done(AppId app) const {
  const auto* p = progress(app);
  return p != nullptr && p->done;
}

int Asct::apps_completed() const {
  int n = 0;
  for (const auto& [_, p] : apps_) {
    if (p.done) ++n;
  }
  return n;
}

}  // namespace integrade::asct
