// Canned cluster/workload configurations shared by the examples and the
// benchmark harness, so every experiment draws from the same population of
// machines the paper's motivating scenario describes (a university
// department: staff workstations, an instructional lab, a few spare and
// dedicated machines).
#pragma once

#include <cstdint>

#include "core/grid.hpp"

namespace integrade::core {

struct CampusMix {
  int office_workers = 20;
  int lab_machines = 20;
  int nocturnal = 4;
  int mostly_idle = 4;
  int busy_servers = 2;
  int dedicated = 0;

  [[nodiscard]] int total() const {
    return office_workers + lab_machines + nocturnal + mostly_idle +
           busy_servers + dedicated;
  }
};

/// A single-segment campus cluster with the given machine-population mix.
/// Machine speeds are drawn deterministically from `seed` in the
/// 500–2000 MIPS range the paper's request example implies.
ClusterConfig campus_cluster(const CampusMix& mix, std::uint64_t seed,
                             const std::string& name = "campus");

/// Convenience: n nodes split across the default mix proportions.
ClusterConfig campus_cluster(int nodes, std::uint64_t seed,
                             const std::string& name = "campus");

/// The paper's topology example: `groups` LAN segments of `nodes_per_group`
/// machines each, 100 Mbps inside a segment, 10 Mbps uplinks between them.
ClusterConfig segmented_cluster(int groups, int nodes_per_group,
                                std::uint64_t seed,
                                const std::string& name = "segmented");

/// All-idle cluster of identical machines — the controlled substrate for
/// protocol microbenchmarks where owner noise would obscure the measurement.
ClusterConfig quiet_cluster(int nodes, std::uint64_t seed, Mips mips = 1000.0,
                            const std::string& name = "quiet");

/// Re-home an existing cluster config onto `segments` equal copies of its
/// first segment, nodes round-robin — the shape the sharded simulation
/// kernel partitions across shards (one shard per segment group). A pure
/// reshaping: machine specs, profiles, and policies are untouched. Note the
/// topology change is visible to the simulation (inter-segment traffic
/// crosses uplinks), so results are comparable across *thread* counts, not
/// with the unsharded single-segment run.
ClusterConfig reshard_cluster(ClusterConfig config, int segments);

/// WAN-class resharding: reshard_cluster plus each segment copy becomes a
/// remote site whose uplink carries `uplink_latency` of propagation delay.
/// Pair it with GridOptions::min_cross_shard_latency_floor (usually the
/// inter-segment path latency this implies, or the site class's declared
/// floor if higher): the engine's lookahead widens to the effective floor,
/// and windows on event-sparse control traffic grow proportionally.
ClusterConfig reshard_cluster_wan(ClusterConfig config, int segments,
                                  SimDuration uplink_latency);

/// Smallest inter-segment path latency a config's segments imply (the raw
/// topology bound the engine would see without a declared floor);
/// kTimeNever for single-segment configs.
SimDuration min_inter_segment_latency(const ClusterConfig& config);

/// Shard-count heuristic for the parallel kernel: enough shards to spread
/// `nodes` at ~`target_nodes_per_shard` apiece, never more than one shard
/// per node. Fewer, fatter shards keep events-per-window high (each window
/// costs one commit rendezvous regardless of how much work it carried);
/// the default target keeps per-window work comfortably above the barrier
/// cost on LAN-class topologies.
int choose_shard_count(std::size_t nodes, std::size_t target_nodes_per_shard = 40);

}  // namespace integrade::core
