#include "core/workloads.hpp"

#include <algorithm>
#include <cassert>

namespace integrade::core {

namespace {

NodeConfig make_node(const node::WeeklyProfile& profile, Rng& rng,
                     int segment = 0) {
  NodeConfig config;
  config.spec.cpu_mips = static_cast<Mips>(rng.uniform_int(500, 2000));
  config.spec.ram = rng.uniform_int(128, 512) * kMiB;
  config.spec.disk = rng.uniform_int(10, 60) * kGiB;
  config.profile = profile;
  config.segment = segment;
  return config;
}

}  // namespace

ClusterConfig campus_cluster(const CampusMix& mix, std::uint64_t seed,
                             const std::string& name) {
  Rng rng(seed);
  ClusterConfig config;
  config.name = name;
  config.segments = {sim::SegmentSpec{name + "-lan"}};

  for (int i = 0; i < mix.office_workers; ++i) {
    config.nodes.push_back(make_node(node::office_worker_profile(), rng));
  }
  for (int i = 0; i < mix.lab_machines; ++i) {
    config.nodes.push_back(make_node(node::student_lab_profile(), rng));
  }
  for (int i = 0; i < mix.nocturnal; ++i) {
    config.nodes.push_back(make_node(node::nocturnal_profile(), rng));
  }
  for (int i = 0; i < mix.mostly_idle; ++i) {
    config.nodes.push_back(make_node(node::mostly_idle_profile(), rng));
  }
  for (int i = 0; i < mix.busy_servers; ++i) {
    config.nodes.push_back(make_node(node::busy_server_profile(), rng));
  }
  for (int i = 0; i < mix.dedicated; ++i) {
    NodeConfig dedicated = make_node(node::mostly_idle_profile(), rng);
    dedicated.dedicated = true;
    dedicated.spec.cpu_mips = 2000.0;
    dedicated.spec.ram = 512 * kMiB;
    config.nodes.push_back(dedicated);
  }
  return config;
}

ClusterConfig campus_cluster(int nodes, std::uint64_t seed,
                             const std::string& name) {
  CampusMix mix;
  mix.office_workers = nodes * 2 / 5;
  mix.lab_machines = nodes * 2 / 5;
  mix.nocturnal = nodes / 12;
  mix.busy_servers = nodes / 25;
  mix.mostly_idle =
      nodes - mix.office_workers - mix.lab_machines - mix.nocturnal -
      mix.busy_servers;
  return campus_cluster(mix, seed, name);
}

ClusterConfig segmented_cluster(int groups, int nodes_per_group,
                                std::uint64_t seed, const std::string& name) {
  Rng rng(seed);
  ClusterConfig config;
  config.name = name;
  config.segments.clear();  // replace the default segment entirely
  for (int g = 0; g < groups; ++g) {
    sim::SegmentSpec segment;
    segment.name = name + "-seg" + std::to_string(g);
    segment.bandwidth = 100.0 * 1000 * 1000 / 8;      // 100 Mbps LAN
    segment.uplink_bandwidth = 10.0 * 1000 * 1000 / 8;  // 10 Mbps uplink
    config.segments.push_back(segment);
  }
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < nodes_per_group; ++i) {
      config.nodes.push_back(make_node(node::mostly_idle_profile(), rng, g));
    }
  }
  return config;
}

ClusterConfig quiet_cluster(int nodes, std::uint64_t seed, Mips mips,
                            const std::string& name) {
  Rng rng(seed);
  ClusterConfig config;
  config.name = name;
  config.segments = {sim::SegmentSpec{name + "-lan"}};
  for (int i = 0; i < nodes; ++i) {
    NodeConfig node_config;
    node_config.spec.cpu_mips = mips;
    node_config.spec.ram = 256 * kMiB;
    node_config.profile = node::mostly_idle_profile();
    // Keep owners essentially silent: no sessions at all.
    node_config.profile.presence_prob.fill(0.0);
    // Short admission grace: these clusters exist to measure protocol
    // behaviour, not owner-idleness detection.
    node_config.policy.idle_grace = kMinute;
    (void)rng;
    config.nodes.push_back(node_config);
  }
  return config;
}

ClusterConfig reshard_cluster(ClusterConfig config, int segments) {
  assert(segments >= 1 && !config.segments.empty());
  sim::SegmentSpec base = config.segments.front();
  const std::string stem =
      base.name.empty() ? config.name : base.name;
  config.segments.clear();
  for (int g = 0; g < segments; ++g) {
    sim::SegmentSpec segment = base;
    segment.name = stem + "-shard" + std::to_string(g);
    config.segments.push_back(std::move(segment));
  }
  for (std::size_t i = 0; i < config.nodes.size(); ++i) {
    config.nodes[i].segment = static_cast<int>(i % static_cast<std::size_t>(segments));
  }
  return config;
}

ClusterConfig reshard_cluster_wan(ClusterConfig config, int segments,
                                  SimDuration uplink_latency) {
  assert(uplink_latency >= 0);
  config = reshard_cluster(std::move(config), segments);
  for (auto& segment : config.segments) segment.uplink_latency = uplink_latency;
  return config;
}

SimDuration min_inter_segment_latency(const ClusterConfig& config) {
  SimDuration bound = kTimeNever;
  for (std::size_t i = 0; i < config.segments.size(); ++i) {
    for (std::size_t j = i + 1; j < config.segments.size(); ++j) {
      const auto& a = config.segments[i];
      const auto& b = config.segments[j];
      bound = std::min(bound, a.latency + a.uplink_latency + b.uplink_latency +
                                  b.latency);
    }
  }
  return bound;
}

int choose_shard_count(std::size_t nodes, std::size_t target_nodes_per_shard) {
  assert(target_nodes_per_shard >= 1);
  if (nodes <= target_nodes_per_shard) return 1;
  // Round to nearest so 1.5x the target still prefers one fat shard over
  // two starved ones.
  const std::size_t shards =
      (nodes + target_nodes_per_shard / 2) / target_nodes_per_shard;
  return static_cast<int>(std::min(shards, nodes));
}

}  // namespace integrade::core
