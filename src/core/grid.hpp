// The InteGrade grid facade: the library's top-level public API.
//
// A Grid owns one simulation (engine + network + seeded randomness) and any
// number of Clusters, each matching Figure 1 of the paper:
//
//   Cluster Manager node : GRM + GUPA + checkpoint repository + BSP
//                          coordinator, one ORB
//   User node            : ASCT, one ORB
//   Resource providers   : Machine + OwnerWorkload + NCC + LRM (+LUPA),
//                          one lightweight ORB each
//   Dedicated nodes      : like providers but ownerless, dedicated policy
//
// Clusters are wired into a hierarchy with connect(); everything runs when
// the caller advances the simulation clock.
//
//   core::Grid grid(/*seed=*/42);
//   auto& cluster = grid.add_cluster(core::campus_cluster(50));
//   grid.run_for(2 * kWeek);                       // let LUPA learn
//   asct::AppBuilder app("render");
//   app.tasks(100, 60'000.0).estimated_duration(30 * kMinute);
//   const AppId id = cluster.asct().submit(cluster.grm_ref(),
//                                          app.build(cluster.asct().ref()));
//   grid.run_until_app_done(cluster, id);
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "asct/asct.hpp"
#include "bsp/coordinator.hpp"
#include "ckpt/agent.hpp"
#include "ckpt/repository.hpp"
#include "common/rng.hpp"
#include "grm/grm.hpp"
#include "lrm/batcher.hpp"
#include "lrm/lrm.hpp"
#include "lupa/gupa.hpp"
#include "ncc/ncc.hpp"
#include "node/machine.hpp"
#include "node/owner.hpp"
#include "obs/obs.hpp"
#include "orb/orb.hpp"
#include "orb/transport.hpp"
#include "security/auth.hpp"
#include "services/naming.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "snapshot/coordinator.hpp"

namespace integrade::core {

struct NodeConfig {
  node::MachineSpec spec;
  node::WeeklyProfile profile;  // ignored for dedicated nodes
  ncc::SharingPolicy policy;
  bool dedicated = false;
  int segment = 0;  // index into ClusterConfig::segments
};

struct ClusterConfig {
  std::string name = "cluster";
  std::vector<sim::SegmentSpec> segments = {sim::SegmentSpec{}};
  std::vector<NodeConfig> nodes;
  grm::GrmOptions grm;
  lrm::LrmOptions lrm;
  bsp::BspOptions bsp;
  /// Reliability options applied to every ORB in the cluster (manager,
  /// user, providers). Defaults preserve historical behaviour.
  orb::OrbOptions orb;
  /// Run a warm-standby GRM on its own node; every LRM gets it as the
  /// failover target (requires lrm.reliable_updates to actually fail over).
  bool standby_grm = false;
  /// Batch the Information Update Protocol per network segment: one
  /// HeartbeatBatcher per segment polls its members' status on a single
  /// timer tick and ships one NodeStatusBatch frame to the GRM, replacing
  /// per-node heartbeat timers and messages; LUPA sampling ticks batch the
  /// same way. Scheduling decisions are unchanged (statuses carry the same
  /// content through the same Grm::on_update path) — only the event and
  /// message counts drop. With lrm.reliable_updates, the per-segment frame
  /// also takes over GRM liveness probing and failover.
  bool batch_heartbeats = false;
  /// Control-plane snapshots (requires standby_grm): the primary manager
  /// periodically captures Trader/GRM/GUPA/ORB-dedup state and ships it —
  /// full image per epoch, then per-period deltas — to a SnapshotStore on
  /// the standby's node. On failover the standby starts from the installed
  /// image instead of an empty Trader, and LRM journal replay
  /// (lrm.report_journal_window) closes the capture-to-failure gap.
  /// Disabled by default: no timers, no endpoints, byte-identical runs.
  snapshot::SnapshotOptions snapshot;
  /// Content-addressed checkpoint data plane (see docs/checkpoints.md):
  /// every provider node runs a CkptAgent + chunk store, the repository
  /// grows an embedded chunk store with a wire servant, and BSP/sequential
  /// checkpoints ship as deduped, LZ-compressed chunks with peer
  /// replication. Disabled by default: no servants, no agents, no wire
  /// bytes — runs are byte-identical to the legacy whole-image path.
  ckpt::DataPlaneOptions ckpt;
  /// Scheduling economy (see docs/scheduling.md): tenants with weights and
  /// quotas, weighted fair-share dispatch, deadline/budget bids, admission
  /// control, and checkpoint-assisted preemption. Disabled by default: no
  /// timers, no endpoints, no RNG draws — dispatch order and every wire
  /// byte are identical to the plain-FIFO scheduler.
  sched::SchedOptions sched;
};

class Grid;

class Cluster {
 public:
  Cluster(Grid& grid, ClusterId id, ClusterConfig config);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] ClusterId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  [[nodiscard]] grm::Grm& grm() { return *grm_; }
  [[nodiscard]] const orb::ObjectRef& grm_ref() const { return grm_->ref(); }
  /// Warm-standby GRM; null unless ClusterConfig::standby_grm was set.
  [[nodiscard]] grm::Grm* standby_grm() { return standby_grm_.get(); }
  [[nodiscard]] lupa::Gupa& gupa() { return gupa_; }
  [[nodiscard]] ckpt::CheckpointRepository& repository() { return repository_; }
  [[nodiscard]] bsp::BspCoordinator& coordinator() { return *coordinator_; }
  [[nodiscard]] asct::Asct& asct() { return *asct_; }
  [[nodiscard]] orb::Orb& manager_orb() { return *manager_orb_; }
  [[nodiscard]] orb::Orb& user_orb() { return *user_orb_; }
  /// Null unless ClusterConfig::snapshot.enabled (and a standby exists).
  [[nodiscard]] snapshot::SnapshotCoordinator* snapshot_coordinator() {
    return snapshot_coordinator_.get();
  }
  [[nodiscard]] snapshot::SnapshotStore* snapshot_store() {
    return snapshot_store_.get();
  }

  [[nodiscard]] lrm::Lrm& lrm(std::size_t i) { return *workers_[i]->lrm; }
  /// Provider `i`'s checkpoint data-plane agent; null unless
  /// ClusterConfig::ckpt.enabled.
  [[nodiscard]] ckpt::CkptAgent* ckpt_agent(std::size_t i) {
    return workers_[i]->ckpt_agent.get();
  }
  /// Wire ref of the repository's chunk-store servant (nil when disabled).
  [[nodiscard]] const orb::ObjectRef& ckpt_store_ref() const {
    return ckpt_store_ref_;
  }
  /// Per-segment heartbeat batcher (ClusterConfig::batch_heartbeats); null
  /// when batching is off or the segment has no provider nodes.
  [[nodiscard]] lrm::HeartbeatBatcher* batcher(int local_segment) {
    const auto idx = static_cast<std::size_t>(local_segment);
    return idx < batchers_.size() ? batchers_[idx].batcher.get() : nullptr;
  }
  [[nodiscard]] node::Machine& machine(std::size_t i) {
    return *workers_[i]->machine;
  }
  /// Network endpoint of provider `i` / the Cluster Manager node — the ids
  /// the FaultInjector crashes and partitions operate on.
  [[nodiscard]] orb::NodeAddress worker_address(std::size_t i) const {
    return workers_[i]->orb->address();
  }
  [[nodiscard]] orb::NodeAddress manager_address() const {
    return manager_orb_->address();
  }
  [[nodiscard]] orb::NodeAddress user_address() const {
    return user_orb_->address();
  }
  /// Null for dedicated nodes (no owner process).
  [[nodiscard]] node::OwnerWorkload* owner(std::size_t i) {
    return workers_[i]->owner.get();
  }

  /// Network segment id (grid-wide) of the cluster's local segment index.
  [[nodiscard]] sim::SegmentId segment_id(int local_index) const {
    return segment_ids_.at(static_cast<std::size_t>(local_index));
  }

  /// Total grid work (MInstr) completed across all provider nodes.
  [[nodiscard]] MInstr total_work_done() const;

 private:
  struct Worker {
    std::unique_ptr<node::Machine> machine;
    std::unique_ptr<node::OwnerWorkload> owner;
    std::unique_ptr<orb::Orb> orb;
    std::unique_ptr<lrm::Lrm> lrm;
    /// Declared after lrm (and orb): the agent must die before the ORB its
    /// pending transfers resolve on.
    std::unique_ptr<ckpt::CkptAgent> ckpt_agent;
  };

  Grid& grid_;
  ClusterId id_;
  ClusterConfig config_;
  std::vector<sim::SegmentId> segment_ids_;

  // Cluster Manager node.
  std::unique_ptr<orb::Orb> manager_orb_;
  lupa::Gupa gupa_;
  ckpt::CheckpointRepository repository_;
  orb::ObjectRef gupa_ref_;
  orb::ObjectRef ckpt_ref_;
  orb::ObjectRef ckpt_store_ref_;  // repository chunk store (data plane)
  std::unique_ptr<grm::Grm> grm_;
  std::unique_ptr<bsp::BspCoordinator> coordinator_;

  // Warm-standby Cluster Manager (optional).
  std::unique_ptr<orb::Orb> standby_orb_;
  std::unique_ptr<grm::Grm> standby_grm_;

  // Control-plane snapshots (optional; requires the standby).
  std::unique_ptr<snapshot::SnapshotStore> snapshot_store_;
  std::unique_ptr<snapshot::SnapshotCoordinator> snapshot_coordinator_;

  // User node.
  std::unique_ptr<orb::Orb> user_orb_;
  std::unique_ptr<asct::Asct> asct_;

  std::vector<std::unique_ptr<Worker>> workers_;

  /// One per local segment index when batch_heartbeats is set (entries with
  /// no provider nodes hold nulls). Each batcher gets its own lightweight
  /// ORB on the segment, allocated after all worker endpoints so enabling
  /// batching never shifts worker addresses.
  struct SegmentBatcher {
    std::unique_ptr<orb::Orb> orb;
    std::unique_ptr<lrm::HeartbeatBatcher> batcher;
  };
  std::vector<SegmentBatcher> batchers_;
  /// Names this cluster registered in the grid's MetricsHub (removed in the
  /// destructor so a cluster never leaves dangling scrape callbacks behind).
  std::vector<std::string> hub_names_;
};

struct GridOptions {
  /// When set, every frame on the grid is HMAC-authenticated under the
  /// realm key derived from this passphrase (paper §3's authentication
  /// requirement). Unkeyed or tampered traffic is dropped at the transport.
  std::string realm_passphrase;
  /// Event-queue shards for the parallel simulation kernel. Shard layout is
  /// part of the experiment definition (it selects per-shard RNG streams),
  /// so results are comparable only across runs with the same value; 1 (the
  /// default) is the historical single-queue engine, byte for byte.
  std::size_t sim_shards = 1;
  /// Worker threads executing shard windows. Any value produces the same
  /// results for a given sim_shards — threads trade wall-clock, never
  /// determinism. See docs/parallel_sim.md.
  std::size_t sim_threads = 1;
  /// Minimum effective latency for *inter-segment* traffic, applied by the
  /// network to every cross-segment delivery regardless of shard layout
  /// (so the simulated workload is identical at any shard count). Topology
  /// builders set it from their segment classes; the engine's conservative
  /// lookahead then gets to use the effective floor instead of the raw
  /// topology minimum, widening windows on WAN-like grids. 0 disables it.
  SimDuration min_cross_shard_latency_floor = 0;
};

class Grid {
 public:
  explicit Grid(std::uint64_t seed, GridOptions options = {});
  ~Grid();
  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] sim::Network& network() { return network_; }
  /// The transport ORBs bind to (the secure decorator when enabled).
  [[nodiscard]] orb::Transport& transport();
  [[nodiscard]] security::SecureTransport* secure_transport() {
    return secure_transport_ ? secure_transport_.get() : nullptr;
  }
  /// The undecorated network transport. Components must bind through
  /// transport(); this exists so tests can model an attacker who injects
  /// raw (unauthenticated) frames beneath the secure layer.
  [[nodiscard]] orb::SimNetworkTransport& raw_transport() { return transport_; }
  /// Grid-wide Naming service: every cluster binds its well-known objects
  /// under "clusters/<name>/..." at construction.
  [[nodiscard]] services::NamingService& naming() { return naming_; }
  [[nodiscard]] Rng fork_rng() { return rng_.fork(); }

  /// Grid-wide observability: one Tracer every cluster's ORBs share (spans
  /// are linked across processes via the wire context) and one MetricsHub
  /// every component registers into. Tracing is disabled by default —
  /// call observability().tracer.enable() before the run to collect spans.
  [[nodiscard]] obs::Observability& observability() { return obs_; }
  [[nodiscard]] obs::Tracer& tracer() { return obs_.tracer; }
  [[nodiscard]] obs::MetricsHub& metrics_hub() { return obs_.hub; }

  Cluster& add_cluster(ClusterConfig config);
  [[nodiscard]] Cluster& cluster(std::size_t i) { return *clusters_[i]; }
  [[nodiscard]] std::size_t cluster_count() const { return clusters_.size(); }

  /// Wire `child`'s GRM under `parent`'s GRM in the wide-area hierarchy.
  void connect(Cluster& parent, Cluster& child);

  /// Advance by `d`, saturating at kTimeNever (a duration near the
  /// SimDuration max must clamp, not wrap past the deadline).
  void run_for(SimDuration d);
  void run_until(SimTime t);
  /// Advance until the app completes at `cluster`'s ASCT or `deadline`
  /// passes; returns true on completion.
  bool run_until_app_done(Cluster& cluster, AppId app, SimTime deadline);

  /// Fresh endpoint attached to `segment` (internal, used by Cluster).
  orb::NodeAddress allocate_endpoint(sim::SegmentId segment);

 private:
  sim::Engine engine_;
  Rng rng_;
  sim::Network network_;
  orb::SimNetworkTransport transport_;
  std::unique_ptr<security::SecureTransport> secure_transport_;
  services::NamingService naming_;
  /// Declared before clusters_: cluster destructors deregister their hub
  /// sources, so the hub must outlive them.
  obs::Observability obs_;
  std::vector<std::unique_ptr<Cluster>> clusters_;
  std::uint64_t next_endpoint_ = 1;
};

}  // namespace integrade::core
