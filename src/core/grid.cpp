#include "core/grid.hpp"

#include <cassert>
#include <map>

#include "ckpt/store.hpp"

namespace integrade::core {

namespace {

/// GUPA as a CORBA object: LRMs push pattern uploads; anyone may ask for
/// forecasts over the wire (the local GRM short-circuits in-process).
class GupaServant final : public orb::SkeletonBase {
 public:
  explicit GupaServant(lupa::Gupa& gupa) {
    register_op<protocol::UsagePatternUpload, cdr::Empty>(
        "upload_pattern",
        [&gupa](const protocol::UsagePatternUpload& upload) -> Result<cdr::Empty> {
          gupa.upload(upload);
          return cdr::Empty{};
        });
    register_op<protocol::ForecastRequest, protocol::ForecastReply>(
        "forecast", [&gupa](const protocol::ForecastRequest& request)
                        -> Result<protocol::ForecastReply> {
          return gupa.forecast(request);
        });
  }
  [[nodiscard]] const char* type_id() const override {
    return "IDL:integrade/Gupa:1.0";
  }
};

/// Checkpoint repository as a CORBA object: LRMs store sequential-task
/// checkpoints here (BSP checkpoints are stored by the coordinator, which
/// is co-located with the repository).
class CheckpointServant final : public orb::SkeletonBase {
 public:
  explicit CheckpointServant(ckpt::CheckpointRepository& repository) {
    register_op<ckpt::Checkpoint, cdr::Empty>(
        "store_checkpoint",
        [&repository](const ckpt::Checkpoint& checkpoint) -> Result<cdr::Empty> {
          // A version regression means a stale writer raced a recovery;
          // dropping it is the correct resolution.
          (void)repository.store(checkpoint);
          return cdr::Empty{};
        });
  }
  [[nodiscard]] const char* type_id() const override {
    return "IDL:integrade/CheckpointRepository:1.0";
  }
};

}  // namespace

Cluster::Cluster(Grid& grid, ClusterId id, ClusterConfig config)
    : grid_(grid), id_(id), config_(std::move(config)) {
  assert(!config_.segments.empty());
  for (const auto& segment : config_.segments) {
    segment_ids_.push_back(grid_.network().add_segment(segment));
  }

  // Components start timers and announce themselves at construction; on a
  // sharded engine those events must land on the shard that owns the node's
  // segment. The manager and user nodes live on the first segment; each
  // provider gets a nested scope for its own segment below.
  sim::Engine::ShardScope manager_scope(
      grid_.engine(), grid_.network().shard_of_segment(segment_ids_.front()));

  // --- Cluster Manager node ---
  const auto manager_addr = grid_.allocate_endpoint(segment_ids_.front());
  manager_orb_ = std::make_unique<orb::Orb>(manager_addr, grid_.transport(),
                                            &grid_.engine(), config_.orb);
  manager_orb_->set_tracer(&grid_.tracer());
  gupa_ref_ = manager_orb_->activate(std::make_shared<GupaServant>(gupa_));
  ckpt_ref_ =
      manager_orb_->activate(std::make_shared<CheckpointServant>(repository_));
  // Checkpoint data plane (optional): the repository grows an embedded
  // content-addressed chunk store, exposed over the wire so provider agents
  // can offer/put/get chunks against it. Nothing here runs when disabled —
  // no servant, no shifted object keys, no wire bytes.
  ckpt::ChunkStore* ckpt_store = nullptr;
  if (config_.ckpt.enabled) {
    ckpt_store = &repository_.enable_data_plane();
    ckpt_store_ref_ = manager_orb_->activate(
        std::make_shared<ckpt::StoreServant>(*ckpt_store));
  }
  grm_ = std::make_unique<grm::Grm>(grid_.engine(), *manager_orb_, id_,
                                    grid_.fork_rng(), config_.grm);
  grm_->set_sched(config_.sched);
  grm_->start(&gupa_, &repository_, &grid_.network());
  coordinator_ = std::make_unique<bsp::BspCoordinator>(
      grid_.engine(), *manager_orb_, *grm_, &repository_, &grid_.network(),
      config_.bsp);
  coordinator_->start();

  // --- Warm-standby Cluster Manager (optional) ---
  // Runs from the start on its own node with an empty Trader. It shares
  // the co-located GUPA/checkpoint services (they live on the primary's
  // node and have their own liveness); its state rebuilds from LRM
  // re-announcements after a failover — the paper's information update
  // protocol makes that state soft by construction.
  if (config_.standby_grm) {
    const auto standby_addr = grid_.allocate_endpoint(segment_ids_.front());
    standby_orb_ = std::make_unique<orb::Orb>(standby_addr, grid_.transport(),
                                              &grid_.engine(), config_.orb);
    standby_orb_->set_tracer(&grid_.tracer());
    standby_grm_ = std::make_unique<grm::Grm>(grid_.engine(), *standby_orb_, id_,
                                              grid_.fork_rng(), config_.grm);
    standby_grm_->set_sched(config_.sched);
    standby_grm_->start(&gupa_, &repository_, &grid_.network());
  }

  // --- Control-plane snapshots (optional; requires the standby) ---
  // The primary periodically captures Trader/GRM/GUPA/ORB-dedup sections
  // and ships them to a SnapshotStore on the standby's node; the standby
  // installs them dormant and wakes the image only at promotion (first
  // status frame or task resync it receives). The GUPA section is captured
  // for warm-start files but has no loader here: primary and standby share
  // the cluster's one GUPA object.
  if (config_.snapshot.enabled && standby_grm_) {
    snapshot_store_ =
        std::make_unique<snapshot::SnapshotStore>(grid_.engine(), *standby_orb_);
    grm::Grm* standby = standby_grm_.get();
    orb::Orb* standby_orb = standby_orb_.get();
    snapshot_store_->register_loader(
        "trader", [standby](std::uint32_t version, cdr::Reader& r) {
          return standby->trader().load(version, r);
        });
    snapshot_store_->register_loader(
        "grm", [standby](std::uint32_t version, cdr::Reader& r) {
          return standby->load(version, r);
        });
    snapshot_store_->register_loader(
        "orb_dedup", [standby_orb](std::uint32_t version, cdr::Reader& r) {
          return standby_orb->load_dedup(version, r);
        });

    snapshot_coordinator_ = std::make_unique<snapshot::SnapshotCoordinator>(
        grid_.engine(), *manager_orb_, config_.snapshot);
    grm::Grm* primary = grm_.get();
    orb::Orb* manager_orb = manager_orb_.get();
    lupa::Gupa* gupa = &gupa_;
    snapshot_coordinator_->add_provider(
        {"trader", services::Trader::kSnapshotVersion, [primary] {
           cdr::Writer w;
           primary->trader().save(w);
           return w.take_buffer();
         }});
    snapshot_coordinator_->add_provider(
        {"grm", primary->snapshot_version(), [primary] {
           cdr::Writer w;
           primary->save(w);
           return w.take_buffer();
         }});
    snapshot_coordinator_->add_provider(
        {"gupa", lupa::Gupa::kSnapshotVersion, [gupa] {
           cdr::Writer w;
           gupa->save(w);
           return w.take_buffer();
         }});
    snapshot_coordinator_->add_provider(
        {"orb_dedup", orb::Orb::kDedupSnapshotVersion, [manager_orb] {
           cdr::Writer w;
           manager_orb->save_dedup(w);
           return w.take_buffer();
         }});
    snapshot_coordinator_->set_target(snapshot_store_->ref());
    snapshot_coordinator_->start();
  }

  // --- User node ---
  const auto user_addr = grid_.allocate_endpoint(segment_ids_.front());
  user_orb_ = std::make_unique<orb::Orb>(user_addr, grid_.transport(),
                                         &grid_.engine(), config_.orb);
  user_orb_->set_tracer(&grid_.tracer());
  asct_ = std::make_unique<asct::Asct>(grid_.engine(), *user_orb_);

  // Publish the cluster's well-known objects in the grid Naming service so
  // any component can bootstrap by name (the CosNaming pattern).
  const std::string prefix = "clusters/" + config_.name;
  grid_.naming().rebind(prefix + "/grm", grm_->ref());
  grid_.naming().rebind(prefix + "/gupa", gupa_ref_);
  grid_.naming().rebind(prefix + "/checkpoints", ckpt_ref_);
  grid_.naming().rebind(prefix + "/asct", asct_->ref());

  // --- Resource provider / dedicated nodes ---
  NodeId next_node{id_.value * 1'000'000 + 1};
  for (const auto& node_config : config_.nodes) {
    auto worker = std::make_unique<Worker>();
    auto spec = node_config.spec;
    if (spec.hostname.empty()) {
      spec.hostname =
          config_.name + "-n" + std::to_string(next_node.value % 1'000'000);
    }
    worker->machine = std::make_unique<node::Machine>(next_node, spec);
    next_node = NodeId(next_node.value + 1);

    const auto segment =
        segment_ids_.at(static_cast<std::size_t>(node_config.segment));
    sim::Engine::ShardScope node_scope(grid_.engine(),
                                       grid_.network().shard_of_segment(segment));
    const auto addr = grid_.allocate_endpoint(segment);
    worker->orb = std::make_unique<orb::Orb>(addr, grid_.transport(),
                                             &grid_.engine(), config_.orb);
    worker->orb->set_tracer(&grid_.tracer());

    lrm::LrmOptions lrm_options = config_.lrm;
    if (config_.batch_heartbeats) {
      // The per-segment batcher owns the heartbeat cadence and the LUPA
      // sampling tick; the LRM arms neither timer itself.
      lrm_options.batched_updates = true;
      lrm_options.lupa_options.external_ticks = true;
    }
    ncc::SharingPolicy policy = node_config.policy;
    if (node_config.dedicated) {
      lrm_options.run_lupa = false;  // paper: "LUPA is not executed in
                                     // dedicated nodes"
      policy = ncc::dedicated_policy();
    } else {
      worker->owner = std::make_unique<node::OwnerWorkload>(
          grid_.engine(), *worker->machine, node_config.profile,
          grid_.fork_rng());
      worker->owner->start();
    }
    worker->lrm = std::make_unique<lrm::Lrm>(grid_.engine(), *worker->orb,
                                             *worker->machine,
                                             ncc::Ncc(policy),
                                             grid_.fork_rng(), lrm_options);
    worker->lrm->start(grm_->ref(), gupa_ref_, ckpt_ref_, &grid_.network());
    if (standby_grm_) worker->lrm->set_standby_grm(standby_grm_->ref());
    if (config_.ckpt.enabled) {
      worker->ckpt_agent = std::make_unique<ckpt::CkptAgent>(
          grid_.engine(), *worker->orb, config_.ckpt);
      worker->ckpt_agent->set_repository(ckpt_store_ref_);
      worker->ckpt_agent->start();
      worker->lrm->set_ckpt_agent(worker->ckpt_agent.get());
    }
    workers_.push_back(std::move(worker));
  }

  // Route BSP checkpoints through the data plane now that every provider's
  // agent exists (the resolver map is captured by value and the agent refs
  // keep their object keys across crash/restart cycles).
  if (config_.ckpt.enabled) {
    auto agents = std::make_shared<std::map<NodeId, orb::ObjectRef>>();
    for (const auto& worker : workers_) {
      if (worker->ckpt_agent) {
        (*agents)[worker->machine->id()] = worker->ckpt_agent->ref();
      }
    }
    coordinator_->set_data_plane(
        ckpt_store, ckpt_store_ref_,
        [agents](NodeId node) {
          auto it = agents->find(node);
          return it == agents->end() ? orb::ObjectRef{} : it->second;
        },
        config_.ckpt.replicate_k);
    // The preemption path replicates a victim's final checkpoint to peer
    // stores the GRM picks from this list.
    std::vector<std::pair<NodeId, orb::ObjectRef>> agent_refs(agents->begin(),
                                                              agents->end());
    grm_->set_ckpt_agents(agent_refs);
    if (standby_grm_) standby_grm_->set_ckpt_agents(agent_refs);
  }

  // --- Per-segment heartbeat batchers ---
  // Built after every worker so enabling batching never shifts worker
  // endpoint addresses (fault-injection configs address nodes by endpoint).
  // Segments with no provider nodes get no batcher. The first frame of each
  // segment is staggered deterministically — period·(s+1)/(S+1) — so frames
  // spread across the period without consuming any grid randomness.
  if (config_.batch_heartbeats) {
    const std::size_t num_segments = segment_ids_.size();
    batchers_.resize(num_segments);
    for (std::size_t s = 0; s < num_segments; ++s) {
      std::vector<lrm::Lrm*> members;
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (static_cast<std::size_t>(config_.nodes[i].segment) == s) {
          members.push_back(workers_[i]->lrm.get());
        }
      }
      if (members.empty()) continue;
      const auto segment = segment_ids_[s];
      sim::Engine::ShardScope batcher_scope(
          grid_.engine(), grid_.network().shard_of_segment(segment));
      const auto addr = grid_.allocate_endpoint(segment);
      SegmentBatcher& slot = batchers_[s];
      slot.orb = std::make_unique<orb::Orb>(addr, grid_.transport(),
                                            &grid_.engine(), config_.orb);
      slot.orb->set_tracer(&grid_.tracer());
      lrm::BatcherOptions batcher_options;
      batcher_options.update_period = config_.lrm.update_period;
      batcher_options.initial_stagger =
          config_.lrm.update_period * static_cast<SimDuration>(s + 1) /
          static_cast<SimDuration>(num_segments + 1);
      batcher_options.drive_lupa = config_.lrm.run_lupa;
      batcher_options.lupa_sample_interval =
          config_.lrm.lupa_options.sample_interval;
      batcher_options.reliable = config_.lrm.reliable_updates;
      batcher_options.grm_failure_threshold = config_.lrm.grm_failure_threshold;
      slot.batcher = std::make_unique<lrm::HeartbeatBatcher>(
          grid_.engine(), *slot.orb, segment, batcher_options);
      for (lrm::Lrm* member : members) slot.batcher->add(member);
      slot.batcher->start(grm_->ref(), standby_grm_ ? standby_grm_->ref()
                                                    : orb::ObjectRef{});
    }
  }

  // --- MetricsHub registrations ---
  // Every component's private registry becomes visible under a stable
  // "component/instance" name; the per-LRM sources also derive the
  // harvest duty cycle at snapshot time. The names are recorded so the
  // destructor can deregister them.
  obs::MetricsHub& hub = grid_.metrics_hub();
  auto add_registry = [&](std::string name, const MetricRegistry* registry) {
    hub.add_registry(name, registry);
    hub_names_.push_back(std::move(name));
  };
  add_registry("grm/" + config_.name, &grm_->metrics());
  if (standby_grm_) {
    add_registry("grm-standby/" + config_.name, &standby_grm_->metrics());
  }
  add_registry("asct/" + config_.name, &asct_->metrics());
  add_registry("orb/" + config_.name + "/manager", &manager_orb_->metrics());
  if (standby_orb_) {
    add_registry("orb/" + config_.name + "/standby", &standby_orb_->metrics());
  }
  if (snapshot_coordinator_) {
    add_registry("snapshot/" + config_.name + "/coordinator",
                 &snapshot_coordinator_->metrics());
    add_registry("snapshot/" + config_.name + "/store",
                 &snapshot_store_->metrics());
  }
  add_registry("orb/" + config_.name + "/user", &user_orb_->metrics());
  for (std::size_t s = 0; s < batchers_.size(); ++s) {
    if (!batchers_[s].batcher) continue;
    add_registry("batcher/" + config_.name + "-s" + std::to_string(s),
                 &batchers_[s].batcher->metrics());
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    lrm::Lrm* lrm = workers_[i]->lrm.get();
    std::string name =
        "lrm/" + config_.name + "-n" + std::to_string(i + 1);
    hub.add_source(name, [lrm](MetricRegistry& out) {
      out = lrm->metrics();
      out.summary("harvest_duty_cycle").observe(lrm->harvest_duty_cycle());
    });
    hub_names_.push_back(std::move(name));
  }
  if (config_.ckpt.enabled) {
    ckpt::ChunkStore* repo_store = repository_.data_plane();
    std::string repo_name = "ckpt/" + config_.name + "/repository";
    hub.add_source(repo_name, [repo_store](MetricRegistry& out) {
      repo_store->fill_metrics(out);
    });
    hub_names_.push_back(std::move(repo_name));
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      ckpt::CkptAgent* agent = workers_[i]->ckpt_agent.get();
      if (agent == nullptr) continue;
      std::string name =
          "ckpt/" + config_.name + "-n" + std::to_string(i + 1);
      hub.add_source(name, [agent](MetricRegistry& out) {
        out = agent->metrics();
        agent->store().fill_metrics(out);
      });
      hub_names_.push_back(std::move(name));
    }
  }
}

Cluster::~Cluster() {
  for (const std::string& name : hub_names_) {
    grid_.metrics_hub().remove(name);
  }
  // Stop protocol actors before their ORBs die underneath them. Batchers
  // first: their ticks dereference member LRMs.
  for (auto& slot : batchers_) {
    if (slot.batcher) slot.batcher->stop();
  }
  for (auto& worker : workers_) {
    if (worker->owner) worker->owner->stop();
    worker->lrm->stop();
  }
  if (snapshot_coordinator_) snapshot_coordinator_->stop();
  coordinator_->stop();
  if (standby_grm_) standby_grm_->stop();
  grm_->stop();
}

MInstr Cluster::total_work_done() const {
  MInstr total = 0;
  for (const auto& worker : workers_) total += worker->lrm->total_work_done();
  return total;
}

Grid::Grid(std::uint64_t seed, GridOptions options)
    : rng_(seed), network_(engine_, Rng(seed ^ 0x9e3779b97f4a7c15ULL)),
      transport_(network_) {
  engine_.configure_shards(options.sim_shards);
  engine_.set_worker_threads(options.sim_threads);
  network_.configure_shards();
  network_.set_latency_floor(options.min_cross_shard_latency_floor);
  obs_.tracer.configure_shards(engine_.shard_count());
  // Kernel health metrics: window counts feed the events-per-window figure
  // the parallel kernel lives or dies by; commit_ns is wall-clock commit
  // overhead (nondeterministic by nature — excluded from any byte-compared
  // output, which only ever covers simulation results).
  obs_.hub.add_source("sim/engine", [this](MetricRegistry& out) {
    out.counter("sim.events").add(engine_.events_fired());
    out.counter("sim.windows").add(engine_.windows_run());
    out.counter("sim.windows_committed").add(engine_.windows_committed());
    out.counter("sim.commit_ns").add(engine_.commit_ns());
    if (engine_.windows_run() > 0) {
      out.summary("sim.events_per_window")
          .observe(static_cast<double>(engine_.events_fired()) /
                   static_cast<double>(engine_.windows_run()));
    }
  });
  if (!options.realm_passphrase.empty()) {
    secure_transport_ = std::make_unique<security::SecureTransport>(
        transport_, security::Key::from_passphrase(options.realm_passphrase));
  }
}

Grid::~Grid() = default;

orb::Transport& Grid::transport() {
  if (secure_transport_) return *secure_transport_;
  return transport_;
}

Cluster& Grid::add_cluster(ClusterConfig config) {
  const ClusterId id(clusters_.size() + 1);
  clusters_.push_back(std::make_unique<Cluster>(*this, id, std::move(config)));
  // The new cluster's segments may tighten the smallest inter-shard path;
  // the engine's conservative lookahead must track the current topology
  // (kTimeNever — no cross-shard pair — leaves windows unbounded, which is
  // exactly right: nothing can cross shards).
  if (engine_.shard_count() > 1) {
    engine_.set_lookahead(network_.min_cross_shard_latency());
  }
  return *clusters_.back();
}

void Grid::connect(Cluster& parent, Cluster& child) {
  child.grm().set_parent(parent.grm_ref());
  parent.grm().add_child(child.grm_ref());
}

void Grid::run_for(SimDuration d) {
  assert(d >= 0);
  const SimTime now = engine_.now();
  // Saturating add: a duration near the SimDuration max must clamp to
  // kTimeNever, not wrap negative and return without running anything.
  const SimTime deadline = (d > kTimeNever - now) ? kTimeNever : now + d;
  engine_.run_until(deadline);
  obs_.tracer.flush_pending();
}

void Grid::run_until(SimTime t) {
  engine_.run_until(t);
  obs_.tracer.flush_pending();
}

bool Grid::run_until_app_done(Cluster& cluster, AppId app, SimTime deadline) {
  // run_chunk: one event on a single-shard engine (the historical step()
  // loop), one lookahead window on a sharded one — the finest grain at
  // which completion can be observed without splitting windows.
  while (engine_.now() < deadline && !cluster.asct().done(app)) {
    if (!engine_.run_chunk(deadline)) break;
  }
  obs_.tracer.flush_pending();
  return cluster.asct().done(app);
}

orb::NodeAddress Grid::allocate_endpoint(sim::SegmentId segment) {
  const orb::NodeAddress address = next_endpoint_++;
  network_.attach(address, segment);
  return address;
}

}  // namespace integrade::core
