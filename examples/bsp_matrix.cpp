// BSP parallel application on harvested desktops.
//
// Models a dense matrix-multiplication-style BSP program (the classic BSP
// teaching example): P processes, each superstep computes a block and
// exchanges boundary data with the next rank, then barriers. The paper's
// central claim is that the BSP model's frequent synchronization points
// make parallel applications checkpointable on volatile desktop machines —
// this example runs one through owner churn and prints what rollback cost.
//
//   $ ./examples/bsp_matrix
#include <cstdio>

#include "asct/asct.hpp"
#include "core/grid.hpp"
#include "core/workloads.hpp"

using namespace integrade;

int main() {
  std::printf("== InteGrade BSP application (matrix blocks) ==\n\n");

  core::Grid grid(/*seed=*/7);

  // 12 machines with real (mostly idle, occasionally interrupting) owners.
  core::ClusterConfig config = core::quiet_cluster(12, 7);
  for (auto& node : config.nodes) {
    node.profile = node::mostly_idle_profile();  // owners do appear sometimes
  }
  auto& cluster = grid.add_cluster(config);
  grid.run_for(2 * kMinute);

  // An 8-process BSP job: 64 supersteps, each rank computing a 512x512
  // block product (~134 MFLOP ≈ 134,000 MInstr is too heavy; scale to
  // 12,000 MInstr ≈ 12 s/superstep on a 1000 MIPS node) and shipping a
  // 2 MiB halo to its ring neighbour; checkpoint every 8 supersteps.
  const int processes = 8;
  const int supersteps = 64;
  asct::AppBuilder builder("bsp-matmul");
  builder
      .bsp(processes, supersteps, /*work_per_superstep=*/12'000.0,
           /*comm=*/2 * kMiB, /*ckpt_every=*/8, /*ckpt_bytes=*/4 * kMiB)
      .ram(64 * kMiB)
      .estimated_duration(30 * kMinute);
  const AppId app = cluster.asct().submit(cluster.grm_ref(),
                                          builder.build(cluster.asct().ref()));
  std::printf("submitted %d-process BSP app, %d supersteps, checkpoint "
              "every 8\n",
              processes, supersteps);

  // Inject one deliberate owner interruption mid-run, on top of whatever
  // the stochastic owners do.
  grid.run_for(10 * kMinute);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.lrm(i).running_task_count() > 0) {
      std::printf("owner returns to %s at t=%.1f min\n",
                  cluster.machine(i).spec().hostname.c_str(),
                  to_seconds(grid.engine().now()) / 60.0);
      node::OwnerLoad busy;
      busy.present = true;
      busy.cpu_fraction = 0.85;
      cluster.machine(i).set_owner_load(busy);
      break;
    }
  }

  if (!grid.run_until_app_done(cluster, app, grid.engine().now() + 24 * kHour)) {
    std::printf("BSP app did not finish within 24 h\n");
    return 1;
  }

  const auto* stats = cluster.coordinator().stats(app);
  const auto* progress = cluster.asct().progress(app);
  std::printf("\nBSP app finished:\n");
  std::printf("  wall time            : %.1f min\n",
              to_seconds(stats->elapsed()) / 60.0);
  std::printf("  supersteps completed : %lld (of %d useful; %lld replayed "
              "after rollback)\n",
              static_cast<long long>(stats->supersteps_completed), supersteps,
              static_cast<long long>(stats->supersteps_replayed));
  std::printf("  rollbacks            : %d\n", stats->rollbacks);
  std::printf("  checkpoints committed: %d\n", stats->checkpoints_committed);
  std::printf("  rank evictions       : %d\n", progress->evictions);
  std::printf("  network bytes moved  : %.1f MiB\n",
              static_cast<double>(grid.network().stats().bytes) / kMiB);
  return 0;
}
