// Federation: three campuses in a secured wide-area hierarchy.
//
// Demonstrates the full multi-cluster story in one program:
//   * an HMAC-secured realm (paper §3: authentication);
//   * per-owner NCC policies written in the config language (paper §3:
//     "a flexible and user-friendly way of letting resource providers
//     share their machines as they want");
//   * name-service bootstrap ("clusters/<name>/grm");
//   * the inter-cluster RemoteSubmit walk when the home cluster saturates.
//
//   $ ./examples/federation
#include <cstdio>

#include "asct/asct.hpp"
#include "core/grid.hpp"
#include "core/workloads.hpp"
#include "ncc/policy_parser.hpp"

using namespace integrade;

int main() {
  std::printf("== InteGrade federation: three secured campuses ==\n\n");

  core::GridOptions grid_options;
  grid_options.realm_passphrase = "usp-ime-federation-2003";
  core::Grid grid(/*seed=*/77, grid_options);

  // Owners at the small department are cautious; the config language is
  // what their Node Control Center UI would write out.
  auto cautious = ncc::parse_policy(R"(
sharing        = on
mode           = strict
cpu_cap        = 50%
ram_cap        = 40%
idle_threshold = 10%
grace          = 5min
blackout       = Mon-Fri 09:00-12:00
)");
  if (!cautious.is_ok()) {
    std::printf("policy error: %s\n", cautious.status().to_string().c_str());
    return 1;
  }

  // Home: a 6-machine department whose owners set the cautious policy.
  auto home_config = core::quiet_cluster(6, 771, 1000.0, "department");
  for (auto& node : home_config.nodes) node.policy = cautious.value();
  auto& department = grid.add_cluster(home_config);

  // Partners: a big instructional lab and the computing centre.
  auto& lab = grid.add_cluster(core::campus_cluster(30, 772, "big-lab"));
  auto centre_config = core::quiet_cluster(10, 773, 2000.0, "centre");
  for (auto& node : centre_config.nodes) node.dedicated = true;
  auto& centre = grid.add_cluster(centre_config);

  grid.connect(lab, department);  // lab is the department's parent
  grid.connect(lab, centre);      // and the centre's

  std::printf("clusters: %zu (department=6 cautious, big-lab=30 mixed, "
              "centre=10 dedicated)\n",
              grid.cluster_count());
  std::printf("naming service knows: ");
  for (const auto& name : grid.naming().list("clusters")) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n\n");

  // Warm up: info updates, summaries, LUPA training at the lab.
  grid.run_for(3 * kDay);

  // The department's researcher resolves their GRM by name and submits a
  // burst far beyond the department's 6 machines (blackout bites too:
  // this is a Tuesday 10:00, inside the owners' 09:00-12:00 blackout, so
  // the department contributes nothing and everything must roam).
  grid.run_until(3 * kDay + 10 * kHour);
  auto grm = grid.naming().resolve("clusters/department/grm");
  if (!grm.is_ok()) {
    std::printf("naming resolution failed\n");
    return 1;
  }

  asct::AppBuilder burst("federated-burst");
  burst.kind(protocol::AppKind::kParametric)
      .tasks(24, 240'000.0)
      .ram(64 * kMiB)
      .estimated_duration(10 * kMinute)
      .checkpoint_period(kMinute, 128 * kKiB);
  const AppId app = department.asct().submit(
      grm.value(), burst.build(department.asct().ref()));
  std::printf("submitted 24 tasks at Tuesday 10:00 — inside the department's "
              "blackout window\n");

  if (!grid.run_until_app_done(department, app, grid.engine().now() + 12 * kHour)) {
    std::printf("burst did not finish\n");
    return 1;
  }

  const auto* progress = department.asct().progress(app);
  std::printf("\nburst finished in %.1f min; %d tasks completed\n",
              to_seconds(progress->makespan()) / 60.0, progress->completed);
  std::printf("department executed %.0f MInstr (blackout held: expect 0)\n",
              department.total_work_done());
  std::printf("big-lab executed    %.0f MInstr\n", lab.total_work_done());
  std::printf("centre executed     %.0f MInstr\n", centre.total_work_done());
  std::printf("remote forwards from department: %lld; adoptions elsewhere: %lld\n",
              static_cast<long long>(
                  department.grm().metrics().counter_value("remote_forwards")),
              static_cast<long long>(
                  lab.grm().metrics().counter_value("remote_adoptions") +
                  centre.grm().metrics().counter_value("remote_adoptions")));
  std::printf("secured frames: %lld signed, %lld verified, %lld rejected\n",
              static_cast<long long>(grid.secure_transport()->metrics()
                                         .counter_value("frames_signed")),
              static_cast<long long>(grid.secure_transport()->metrics()
                                         .counter_value("frames_verified")),
              static_cast<long long>(grid.secure_transport()->rejected_frames()));
  return 0;
}
