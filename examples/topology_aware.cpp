// Topology-aware submission: the paper's §3 request, verbatim.
//
//   "execute application X in two groups of 50 nodes, each group connected
//    internally by a 100 Mbps network and the two groups connected by a
//    10 Mbps network; each node should have at least 16 MB of RAM and a
//    CPU of at least 500 MIPS"
//
// This example builds exactly that grid, issues exactly that request, and
// shows the GRM pinning each group to a qualifying segment.
//
//   $ ./examples/topology_aware
#include <cstdio>

#include "asct/asct.hpp"
#include "core/grid.hpp"
#include "core/workloads.hpp"

using namespace integrade;

int main() {
  std::printf("== InteGrade topology-aware scheduling ==\n\n");

  core::Grid grid(/*seed=*/1999);

  // Two 100 Mbps lab segments of 55 machines each (a little slack over the
  // requested 50), joined by 10 Mbps uplinks.
  auto config = core::segmented_cluster(/*groups=*/2, /*nodes_per_group=*/55,
                                        /*seed=*/1999);
  for (auto& node : config.nodes) {
    node.policy.idle_grace = kMinute;  // quick admission for the demo
  }
  auto& cluster = grid.add_cluster(config);
  std::printf("built %zu nodes across 2 segments "
              "(100 Mbps intra, 10 Mbps inter)\n",
              cluster.size());

  grid.run_for(3 * kMinute);
  std::printf("GRM sees %zu nodes\n\n", cluster.grm().known_nodes());

  // The paper's request, as a topology spec + constraint expression.
  protocol::TopologySpec topology;
  topology.groups = {{50, 100e6 / 8}, {50, 100e6 / 8}};
  topology.min_inter_bandwidth = 10e6 / 8;

  asct::AppBuilder builder("application-X");
  builder.kind(protocol::AppKind::kParametric)
      .tasks(100, 90'000.0)
      .ram(16 * kMiB)
      .constraint("cpu_mips >= 500 and ram_total_mb >= 16")
      .topology(topology)
      .estimated_duration(10 * kMinute);
  const AppId app = cluster.asct().submit(cluster.grm_ref(),
                                          builder.build(cluster.asct().ref()));
  std::printf("submitted: 2 groups x 50 nodes, 100 Mbps internal, 10 Mbps "
              "between, >=16 MB RAM, >=500 MIPS\n");

  if (!grid.run_until_app_done(cluster, app, grid.engine().now() + 12 * kHour)) {
    std::printf("application did not finish in time\n");
    return 1;
  }

  // Verify the placement respected the grouping.
  int seg0_nodes = 0;
  int seg1_nodes = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.lrm(i).total_work_done() <= 0) continue;
    if (i < 55) {
      ++seg0_nodes;
    } else {
      ++seg1_nodes;
    }
  }
  const auto* progress = cluster.asct().progress(app);
  std::printf("\ncompleted %d tasks in %.1f min\n", progress->completed,
              to_seconds(progress->makespan()) / 60.0);
  std::printf("nodes used: %d on segment 0, %d on segment 1\n", seg0_nodes,
              seg1_nodes);
  std::printf("inter-segment (10 Mbps backbone) bytes: %.2f MiB\n",
              static_cast<double>(grid.network().backbone_bytes()) / kMiB);
  std::printf("intra-segment traffic stayed on the fast LANs, as requested\n");
  return 0;
}
