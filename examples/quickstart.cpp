// Quickstart: stand up a small InteGrade cluster, submit a sequential
// application, and watch it complete.
//
//   $ ./examples/quickstart
//
// Walks through the full paper pipeline in miniature: LRMs report status to
// the GRM via the Information Update Protocol; the GRM stores offers in its
// Trader; the ASCT submits an application; the GRM negotiates a reservation
// with a candidate node; the LRM runs the task in the owner's idle cycles
// and reports completion.
#include <cstdio>

#include "asct/asct.hpp"
#include "core/grid.hpp"
#include "core/workloads.hpp"

using namespace integrade;

int main() {
  std::printf("== InteGrade quickstart ==\n\n");

  // A deterministic grid: same seed, same run, every time.
  core::Grid grid(/*seed=*/2003);

  // Eight spare desktop machines on one LAN.
  auto& cluster = grid.add_cluster(core::quiet_cluster(8, /*seed=*/2003));
  std::printf("cluster '%s': %zu resource-provider nodes\n",
              cluster.name().c_str(), cluster.size());

  // Let the Information Update Protocol populate the GRM's Trader.
  grid.run_for(2 * kMinute);
  std::printf("after 2 simulated minutes the GRM knows %zu nodes "
              "(%zu trader offers)\n\n",
              cluster.grm().known_nodes(),
              cluster.grm().trader().offer_count());

  // Describe an application: one task of 120,000 MInstr (~2 minutes on a
  // 1000 MIPS machine), preferring the fastest exportable CPU.
  asct::AppBuilder builder("hello-grid");
  builder.tasks(1, 120'000.0)
      .ram(32 * kMiB)
      .preference("max exportable_mips")
      .estimated_duration(3 * kMinute);
  const auto spec = builder.build(cluster.asct().ref());
  std::printf("submitting '%s' (%zu task, %.0f MInstr)\n", spec.name.c_str(),
              spec.tasks.size(), spec.tasks[0].work);

  const AppId app = cluster.asct().submit(cluster.grm_ref(), spec);

  if (!grid.run_until_app_done(cluster, app, grid.engine().now() + kHour)) {
    std::printf("application did not finish within an hour of sim time\n");
    return 1;
  }

  const auto* progress = cluster.asct().progress(app);
  std::printf("\napplication completed:\n");
  std::printf("  makespan        : %.1f s\n", to_seconds(progress->makespan()));
  std::printf("  tasks completed : %d\n", progress->completed);
  std::printf("  evictions       : %d\n", progress->evictions);

  std::printf("\nevent log:\n");
  for (const auto& event : cluster.asct().events()) {
    std::printf("  t=%8.1fs  %-16s task=%s node=%s %s\n", to_seconds(event.at),
                protocol::app_event_kind_name(event.kind),
                to_string(event.task).c_str(), to_string(event.node).c_str(),
                event.detail.c_str());
  }
  return 0;
}
