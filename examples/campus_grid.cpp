// Campus grid: the paper's motivating scenario end to end.
//
// A university department shares 50 desktop machines — staff workstations,
// an instructional lab, a couple of always-busy servers and spare boxes.
// LUPA learns each machine's weekly rhythm for two weeks; then a researcher
// submits a 60-task parameter sweep with checkpointing, and the GRM places
// tasks using GUPA idleness forecasts. Owners come and go the whole time;
// evicted tasks resume from their checkpoints elsewhere.
//
//   $ ./examples/campus_grid
#include <cstdio>

#include "asct/asct.hpp"
#include "core/grid.hpp"
#include "core/workloads.hpp"

using namespace integrade;

int main() {
  std::printf("== InteGrade campus grid ==\n\n");

  core::Grid grid(/*seed=*/42);
  core::CampusMix mix;
  mix.office_workers = 24;
  mix.lab_machines = 18;
  mix.nocturnal = 4;
  mix.mostly_idle = 2;
  mix.busy_servers = 2;
  auto& campus = grid.add_cluster(core::campus_cluster(mix, /*seed=*/42));
  std::printf("campus cluster: %zu machines (%d office, %d lab, %d nocturnal, "
              "%d spare, %d servers)\n",
              campus.size(), mix.office_workers, mix.lab_machines,
              mix.nocturnal, mix.mostly_idle, mix.busy_servers);

  // Two weeks of LUPA learning while the campus lives its normal life.
  std::printf("\nsimulating 2 weeks of normal usage (LUPA training)...\n");
  grid.run_for(2 * kWeek);
  std::printf("GUPA now holds usage patterns for %zu nodes\n",
              campus.gupa().node_count());

  // A Monday 18:00 submission: the evening is coming, forecasts are good.
  const SimTime submit_at = 2 * kWeek + 18 * kHour;
  grid.run_until(submit_at);

  asct::AppBuilder sweep("monte-carlo-sweep");
  sweep.kind(protocol::AppKind::kParametric)
      .tasks(60, 180'000.0)  // ~3 min each at 1000 MIPS
      .ram(48 * kMiB)
      .checkpoint_period(kMinute, 256 * kKiB)
      .estimated_duration(10 * kMinute)
      .preference("max exportable_mips");
  const AppId app =
      campus.asct().submit(campus.grm_ref(), sweep.build(campus.asct().ref()));
  std::printf("\nsubmitted 60-task sweep at Monday 18:00 (t=%.1f h)\n",
              to_seconds(submit_at) / 3600.0);

  if (!grid.run_until_app_done(campus, app, submit_at + 24 * kHour)) {
    std::printf("sweep did not finish within 24 h\n");
    return 1;
  }

  const auto* progress = campus.asct().progress(app);
  std::printf("\nsweep finished:\n");
  std::printf("  makespan          : %.1f min\n",
              to_seconds(progress->makespan()) / 60.0);
  std::printf("  tasks completed   : %d\n", progress->completed);
  std::printf("  evictions survived: %d (rescheduled %d)\n",
              progress->evictions, progress->reschedules);

  // Where did the work land?
  int used = 0;
  MInstr total = 0;
  for (std::size_t i = 0; i < campus.size(); ++i) {
    const MInstr done = campus.lrm(i).total_work_done();
    if (done > 0) ++used;
    total += done;
  }
  std::printf("  nodes contributing: %d of %zu\n", used, campus.size());
  std::printf("  grid work executed: %.0f MInstr (task demand %.0f; the\n"
              "  difference is eviction-replayed work not yet checkpointed)\n",
              total, 60 * 180'000.0);
  std::printf("  GRM negotiation rounds: %lld, forecast queries: %lld\n",
              static_cast<long long>(
                  campus.grm().metrics().counter_value("negotiation_rounds")),
              static_cast<long long>(
                  campus.grm().metrics().counter_value("forecast_queries")));
  return 0;
}
